#include "vm/verify.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "vm/value.hpp"

namespace starfish::vm {

namespace {

const char* mnemonic(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kPushInt: return "push_int";
    case Op::kPushFloat: return "push_float";
    case Op::kPushBool: return "push_bool";
    case Op::kPushUnit: return "push_unit";
    case Op::kPop: return "pop";
    case Op::kDup: return "dup";
    case Op::kSwap: return "swap";
    case Op::kLoadLocal: return "load_local";
    case Op::kStoreLocal: return "store_local";
    case Op::kLoadGlobal: return "load_global";
    case Op::kStoreGlobal: return "store_global";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kNeg: return "neg";
    case Op::kFAdd: return "fadd";
    case Op::kFSub: return "fsub";
    case Op::kFMul: return "fmul";
    case Op::kFDiv: return "fdiv";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kNot: return "not";
    case Op::kI2F: return "i2f";
    case Op::kF2I: return "f2i";
    case Op::kJmp: return "jmp";
    case Op::kJmpIfFalse: return "jmp_if_false";
    case Op::kCall: return "call";
    case Op::kRet: return "ret";
    case Op::kHalt: return "halt";
    case Op::kNewArray: return "new_array";
    case Op::kNewBytes: return "new_bytes";
    case Op::kALoad: return "aload";
    case Op::kAStore: return "astore";
    case Op::kALen: return "alen";
    case Op::kSyscall: return "syscall";
  }
  return "?";
}

const char* syscall_name(Syscall s) {
  switch (s) {
    case Syscall::kPrint: return "print";
    case Syscall::kRank: return "rank";
    case Syscall::kWorldSize: return "world_size";
    case Syscall::kSendTo: return "send_to";
    case Syscall::kRecvFrom: return "recv_from";
    case Syscall::kCheckpoint: return "checkpoint";
    case Syscall::kSleepMs: return "sleep_ms";
    case Syscall::kSpin: return "spin";
    case Syscall::kBarrier: return "barrier";
    case Syscall::kAllreduceSum: return "allreduce_sum";
  }
  return nullptr;
}

util::Error bad(const Function& fn, size_t pc, const std::string& what) {
  return util::Error::make(
      "verify", fn.name + "+" + std::to_string(pc) + ": " + what);
}

}  // namespace

util::Status validate(const Program& program) {
  if (program.functions.empty()) {
    return util::Error::make("verify", "program has no functions");
  }
  if (program.function_index("main") < 0) {
    return util::Error::make("verify", "program has no 'main'");
  }
  std::set<std::string> names;
  for (const auto& fn : program.functions) {
    if (!names.insert(fn.name).second) {
      return util::Error::make("verify", "duplicate function '" + fn.name + "'");
    }
    if (fn.code.empty()) return util::Error::make("verify", fn.name + ": empty body");
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
      const Instr& in = fn.code[pc];
      switch (in.op) {
        case Op::kJmp:
        case Op::kJmpIfFalse:
          if (in.imm_i < 0 || static_cast<size_t>(in.imm_i) > fn.code.size()) {
            return bad(fn, pc, "jump target out of range");
          }
          break;
        case Op::kCall:
          if (in.imm_i < 0 ||
              static_cast<size_t>(in.imm_i) >= program.functions.size()) {
            return bad(fn, pc, "call target out of range");
          }
          break;
        case Op::kLoadLocal:
        case Op::kStoreLocal:
          if (in.imm_i < 0 || static_cast<size_t>(in.imm_i) >= fn.n_locals) {
            return bad(fn, pc, "local slot out of range");
          }
          break;
        case Op::kLoadGlobal:
        case Op::kStoreGlobal:
          if (in.imm_i < 0 || in.imm_i > 1'000'000) {
            return bad(fn, pc, "global slot out of range");
          }
          break;
        case Op::kSyscall:
          if (syscall_name(static_cast<Syscall>(in.imm_i)) == nullptr) {
            return bad(fn, pc, "unknown syscall id " + std::to_string(in.imm_i));
          }
          break;
        default:
          break;
      }
    }
    // Control must not run off the end: the final instruction must be an
    // unconditional transfer.
    const Op last = fn.code.back().op;
    if (last != Op::kHalt && last != Op::kRet && last != Op::kJmp) {
      return bad(fn, fn.code.size() - 1, "function can fall off its end");
    }
  }
  return util::Status::ok_status();
}

// ------------------------------------------------------------ analyze ----
//
// Forward dataflow over <operand-stack tags, local tags>, with the stack
// depth tracked *exactly* (relative to function entry). The lattice per
// slot is Tag < Unknown, so the fixpoint is reached after at most one
// widening per slot. Everything here errs toward "keep the runtime check":
// an instruction is marked fast only when the facts prove the checked
// implementation could not trap on its stack depth or operand tags.

namespace {

constexpr uint8_t kTagUnknown = 0xff;

inline uint8_t tag_of(Tag t) { return static_cast<uint8_t>(t); }
inline bool is_known(uint8_t t) { return t != kTagUnknown; }
inline bool may_be(uint8_t t, Tag want) {
  return t == kTagUnknown || t == tag_of(want);
}

struct AbsState {
  std::vector<uint8_t> stack;
  std::vector<uint8_t> locals;
};

/// Joins src into dst; depths must agree (the depth is exact, not a range).
/// Returns false on a depth mismatch; sets `changed` if dst widened.
bool join_into(AbsState& dst, const AbsState& src, bool& changed) {
  if (dst.stack.size() != src.stack.size()) return false;
  for (size_t i = 0; i < dst.stack.size(); ++i) {
    if (dst.stack[i] != src.stack[i] && dst.stack[i] != kTagUnknown) {
      dst.stack[i] = kTagUnknown;
      changed = true;
    }
  }
  for (size_t i = 0; i < dst.locals.size(); ++i) {
    if (dst.locals[i] != src.locals[i] && dst.locals[i] != kTagUnknown) {
      dst.locals[i] = kTagUnknown;
      changed = true;
    }
  }
  return true;
}

/// Host-side stack effect of each syscall, mirroring what
/// core/process.cpp's service_syscall does between the kSyscall return and
/// complete_syscall(). The facts at pc+1 describe the post-completion stack.
struct SyscallEffect {
  bool known = false;
  uint32_t pops = 0;
  bool pushes = false;
  uint8_t push_tag = kTagUnknown;
};

SyscallEffect syscall_effect(int64_t id) {
  switch (static_cast<Syscall>(id)) {
    case Syscall::kPrint: return {true, 1, false, 0};
    case Syscall::kRank: return {true, 0, true, tag_of(Tag::kInt)};
    case Syscall::kWorldSize: return {true, 0, true, tag_of(Tag::kInt)};
    case Syscall::kSendTo: return {true, 2, false, 0};
    case Syscall::kRecvFrom: return {true, 1, true, kTagUnknown};
    case Syscall::kCheckpoint: return {true, 0, true, tag_of(Tag::kUnit)};
    case Syscall::kSleepMs: return {true, 1, false, 0};
    case Syscall::kSpin: return {true, 1, false, 0};
    case Syscall::kBarrier: return {true, 0, false, 0};
    case Syscall::kAllreduceSum: return {true, 1, true, tag_of(Tag::kInt)};
  }
  return {};
}

/// Analyzes one function in isolation (calls optimistically assumed to have
/// their nominal pop-args/push-result effect; analyze() demotes callers of
/// unanalyzable callees afterwards). Appends reachable call targets to
/// `call_targets`.
FunctionFacts analyze_function(const Program& prog, const Function& fn,
                               std::vector<uint32_t>& call_targets) {
  const size_t n = fn.code.size();
  FunctionFacts facts;
  facts.fast.assign(n, 0);
  facts.operand_tag.assign(n, 0);
  facts.depth.assign(n, -1);
  if (n == 0) {
    facts.analyzed = true;  // nothing to prove; first fetch traps pc-oob
    return facts;
  }

  std::vector<std::optional<AbsState>> in(n);
  AbsState entry;
  entry.locals.assign(fn.n_locals, tag_of(Tag::kUnit));
  for (uint32_t a = 0; a < fn.n_args && a < fn.n_locals; ++a) {
    entry.locals[a] = kTagUnknown;  // caller-provided, any tag
  }
  in[0] = std::move(entry);

  std::vector<size_t> work{0};
  std::vector<char> queued(n, 0);
  queued[0] = 1;
  bool failed = false;

  auto enqueue = [&](size_t pc) {
    if (!queued[pc]) {
      queued[pc] = 1;
      work.push_back(pc);
    }
  };

  while (!work.empty() && !failed) {
    const size_t pc = work.back();
    work.pop_back();
    queued[pc] = 0;
    AbsState st = *in[pc];
    const Instr& instr = fn.code[pc];

    facts.depth[pc] = static_cast<int32_t>(st.stack.size());
    facts.max_stack = std::max<uint32_t>(facts.max_stack,
                                         static_cast<uint32_t>(st.stack.size()));
    bool fast = false;
    uint8_t operand_tag = 0;
    bool flows_next = false;   // falls through to pc+1
    int64_t extra_succ = -1;   // branch target, when taken

    // A pop below the entry depth would read the *caller's* operand stack —
    // legal at runtime (or an absolute underflow trap; we cannot tell which
    // from here), so the whole function forfeits its facts.
    auto need = [&](size_t k) {
      if (st.stack.size() < k) {
        failed = true;
        return false;
      }
      return true;
    };
    auto pop1 = [&]() {
      const uint8_t t = st.stack.back();
      st.stack.pop_back();
      return t;
    };
    auto push = [&](uint8_t t) { st.stack.push_back(t); };
    // Definite trap: preconditions provably violated on every path; the
    // instruction keeps its runtime check and kills the flow.
    bool definite_trap = false;

    switch (instr.op) {
      case Op::kNop:
        fast = flows_next = true;
        break;
      case Op::kPushInt:
        push(tag_of(Tag::kInt));
        fast = flows_next = true;
        break;
      case Op::kPushFloat:
        push(tag_of(Tag::kFloat));
        fast = flows_next = true;
        break;
      case Op::kPushBool:
        push(tag_of(Tag::kBool));
        fast = flows_next = true;
        break;
      case Op::kPushUnit:
        push(tag_of(Tag::kUnit));
        fast = flows_next = true;
        break;
      case Op::kPop:
        if (!need(1)) break;
        (void)pop1();
        fast = flows_next = true;
        break;
      case Op::kDup:
        if (!need(1)) break;
        push(st.stack.back());
        fast = flows_next = true;
        break;
      case Op::kSwap:
        if (!need(2)) break;
        std::swap(st.stack[st.stack.size() - 1], st.stack[st.stack.size() - 2]);
        fast = flows_next = true;
        break;
      case Op::kLoadLocal: {
        const int64_t idx = instr.imm_i;
        if (idx < 0 || static_cast<size_t>(idx) >= fn.n_locals) {
          definite_trap = true;
          break;
        }
        push(st.locals[static_cast<size_t>(idx)]);
        fast = flows_next = true;
        break;
      }
      case Op::kStoreLocal: {
        const int64_t idx = instr.imm_i;
        if (idx < 0 || static_cast<size_t>(idx) >= fn.n_locals) {
          definite_trap = true;
          break;
        }
        if (!need(1)) break;
        st.locals[static_cast<size_t>(idx)] = pop1();
        fast = flows_next = true;
        break;
      }
      case Op::kLoadGlobal:
        if (instr.imm_i < 0 || instr.imm_i > 1'000'000) {
          definite_trap = true;  // runtime: "global index out of range"
          break;
        }
        push(kTagUnknown);  // globals are shared, mutated across functions
        fast = flows_next = true;
        break;
      case Op::kStoreGlobal:
        if (instr.imm_i < 0 || instr.imm_i > 1'000'000) {
          definite_trap = true;
          break;
        }
        if (!need(1)) break;
        (void)pop1();
        fast = flows_next = true;
        break;

      case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDiv: case Op::kMod:
      case Op::kAnd: case Op::kOr: {
        if (!need(2)) break;
        const uint8_t b = pop1(), a = pop1();
        if (!may_be(a, Tag::kInt) || !may_be(b, Tag::kInt)) {
          definite_trap = true;
          break;
        }
        // Div/mod stay guarded against a zero divisor even on the fast
        // path; only the underflow/type checks are elided.
        fast = is_known(a) && is_known(b);
        push(tag_of(Tag::kInt));
        flows_next = true;
        break;
      }
      case Op::kNeg: {
        if (!need(1)) break;
        const uint8_t a = pop1();
        if (a == tag_of(Tag::kInt) || a == tag_of(Tag::kFloat)) {
          fast = true;
          operand_tag = a;
          push(a);
        } else if (a == kTagUnknown) {
          push(kTagUnknown);
        } else {
          definite_trap = true;
          break;
        }
        flows_next = true;
        break;
      }
      case Op::kFAdd: case Op::kFSub: case Op::kFMul: case Op::kFDiv: {
        if (!need(2)) break;
        const uint8_t b = pop1(), a = pop1();
        if (!may_be(a, Tag::kFloat) || !may_be(b, Tag::kFloat)) {
          definite_trap = true;
          break;
        }
        fast = is_known(a) && is_known(b);
        push(tag_of(Tag::kFloat));
        flows_next = true;
        break;
      }
      case Op::kEq: case Op::kNe: case Op::kLt: case Op::kLe: case Op::kGt:
      case Op::kGe: {
        if (!need(2)) break;
        const uint8_t b = pop1(), a = pop1();
        const bool can_int = may_be(a, Tag::kInt) && may_be(b, Tag::kInt);
        const bool can_float = may_be(a, Tag::kFloat) && may_be(b, Tag::kFloat);
        const bool can_bool = may_be(a, Tag::kBool) && may_be(b, Tag::kBool);
        if (!can_int && !can_float && !can_bool) {
          definite_trap = true;
          break;
        }
        if (is_known(a) && is_known(b) && a == b) {
          fast = true;
          operand_tag = a;
        }
        push(tag_of(Tag::kBool));
        flows_next = true;
        break;
      }
      case Op::kNot: {
        if (!need(1)) break;
        const uint8_t a = pop1();
        if (!may_be(a, Tag::kBool)) {
          definite_trap = true;
          break;
        }
        fast = is_known(a);
        push(tag_of(Tag::kBool));
        flows_next = true;
        break;
      }
      case Op::kI2F: {
        if (!need(1)) break;
        const uint8_t a = pop1();
        if (!may_be(a, Tag::kInt)) {
          definite_trap = true;
          break;
        }
        fast = is_known(a);
        push(tag_of(Tag::kFloat));
        flows_next = true;
        break;
      }
      case Op::kF2I: {
        if (!need(1)) break;
        const uint8_t a = pop1();
        if (!may_be(a, Tag::kFloat)) {
          definite_trap = true;
          break;
        }
        fast = is_known(a);
        push(tag_of(Tag::kInt));
        flows_next = true;
        break;
      }

      case Op::kJmp: {
        fast = true;
        const auto target = static_cast<uint32_t>(instr.imm_i);
        if (target < n) extra_succ = target;
        // else: the next fetch traps pc-out-of-range (kept in the fast loop)
        break;
      }
      case Op::kJmpIfFalse: {
        if (!need(1)) break;
        const uint8_t a = pop1();
        if (!may_be(a, Tag::kBool)) {
          definite_trap = true;
          break;
        }
        fast = is_known(a);
        flows_next = true;
        const auto target = static_cast<uint32_t>(instr.imm_i);
        if (target < n) extra_succ = target;
        break;
      }
      case Op::kCall: {
        const int64_t idx = instr.imm_i;
        if (idx < 0 || static_cast<size_t>(idx) >= prog.functions.size()) {
          definite_trap = true;
          break;
        }
        const Function& callee = prog.functions[static_cast<size_t>(idx)];
        if (!need(callee.n_args)) break;
        for (uint32_t a = 0; a < callee.n_args; ++a) (void)pop1();
        push(kTagUnknown);  // the callee's return value
        call_targets.push_back(static_cast<uint32_t>(idx));
        fast = flows_next = true;
        break;
      }
      case Op::kRet:
        // A ret at relative depth 0 pops (or not) depending on the caller's
        // absolute stack — unprovable from here.
        if (!need(1)) break;
        fast = true;
        break;
      case Op::kHalt:
        fast = true;
        break;

      case Op::kNewArray:
      case Op::kNewBytes: {
        if (!need(1)) break;
        const uint8_t a = pop1();
        if (!may_be(a, Tag::kInt)) {
          definite_trap = true;
          break;
        }
        // Heap ops keep their dynamic checks (length sign, bounds, kind);
        // the fast loop runs them through the checked step.
        push(tag_of(Tag::kRef));
        flows_next = true;
        break;
      }
      case Op::kALoad: {
        if (!need(2)) break;
        const uint8_t idx = pop1(), ref = pop1();
        if (!may_be(ref, Tag::kRef) || !may_be(idx, Tag::kInt)) {
          definite_trap = true;
          break;
        }
        push(kTagUnknown);
        flows_next = true;
        break;
      }
      case Op::kAStore: {
        if (!need(3)) break;
        (void)pop1();
        const uint8_t idx = pop1(), ref = pop1();
        if (!may_be(ref, Tag::kRef) || !may_be(idx, Tag::kInt)) {
          definite_trap = true;
          break;
        }
        flows_next = true;
        break;
      }
      case Op::kALen: {
        if (!need(1)) break;
        const uint8_t ref = pop1();
        if (!may_be(ref, Tag::kRef)) {
          definite_trap = true;
          break;
        }
        push(tag_of(Tag::kInt));
        flows_next = true;
        break;
      }

      case Op::kSyscall: {
        const SyscallEffect eff = syscall_effect(instr.imm_i);
        if (!eff.known) {
          failed = true;  // unknown host effect: no facts for this function
          break;
        }
        if (!need(eff.pops)) break;
        for (uint32_t k = 0; k < eff.pops; ++k) (void)pop1();
        if (eff.pushes) push(eff.push_tag);
        fast = flows_next = true;  // the op itself just returns to the host
        break;
      }
    }

    if (failed) break;
    facts.fast[pc] = fast ? 1 : 0;
    facts.operand_tag[pc] = operand_tag;
    facts.max_stack = std::max<uint32_t>(facts.max_stack,
                                         static_cast<uint32_t>(st.stack.size()));
    if (definite_trap) continue;  // no successors: flow dies here

    auto propagate = [&](size_t succ, const AbsState& out) {
      if (!in[succ]) {
        in[succ] = out;
        enqueue(succ);
        return;
      }
      bool changed = false;
      if (!join_into(*in[succ], out, changed)) {
        failed = true;  // depth mismatch at a merge point
        return;
      }
      if (changed) enqueue(succ);
    };
    if (extra_succ >= 0) propagate(static_cast<size_t>(extra_succ), st);
    if (flows_next && pc + 1 < n) propagate(pc + 1, st);
    // flows_next with pc+1 == n: the next fetch traps pc-out-of-range.
  }

  if (failed) {
    facts = FunctionFacts{};
    facts.fast.assign(n, 0);
    facts.operand_tag.assign(n, 0);
    facts.depth.assign(n, -1);
    return facts;
  }
  facts.analyzed = true;
  return facts;
}

}  // namespace

ProgramFacts analyze(const Program& program) {
  ProgramFacts out;
  const size_t n = program.functions.size();
  out.functions.reserve(n);
  std::vector<std::vector<uint32_t>> calls(n);
  for (size_t i = 0; i < n; ++i) {
    out.functions.push_back(analyze_function(program, program.functions[i], calls[i]));
  }
  // A caller's depth facts assumed every reachable callee pops its args and
  // pushes exactly one result — true only for functions that never reach
  // below their own entry depth, i.e. analyzed ones. Demote callers of
  // unanalyzable callees until the assumption holds everywhere (the
  // optimistic fixpoint is sound: a first-in-time violation would need an
  // earlier one).
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (!out.functions[i].analyzed) continue;
      for (uint32_t callee : calls[i]) {
        if (!out.functions[callee].analyzed) {
          FunctionFacts demoted;
          demoted.fast.assign(out.functions[i].fast.size(), 0);
          demoted.operand_tag.assign(out.functions[i].fast.size(), 0);
          demoted.depth.assign(out.functions[i].fast.size(), -1);
          out.functions[i] = std::move(demoted);
          changed = true;
          break;
        }
      }
    }
  }
  for (const auto& f : out.functions) {
    if (f.analyzed) {
      out.any_fast = true;
      break;
    }
  }
  return out;
}

std::string disassemble(const Program& program) {
  std::string out;
  for (const auto& fn : program.functions) {
    // Collect jump targets for label synthesis.
    std::set<size_t> targets;
    for (const auto& in : fn.code) {
      if (in.op == Op::kJmp || in.op == Op::kJmpIfFalse) {
        targets.insert(static_cast<size_t>(in.imm_i));
      }
    }
    out += "func " + fn.name + " " + std::to_string(fn.n_args) + " " +
           std::to_string(fn.n_locals) + "\n";
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
      if (targets.contains(pc)) {
        out += "L";
        out += std::to_string(pc);
        out += ":\n";
      }
      const Instr& in = fn.code[pc];
      out += "  ";
      out += mnemonic(in.op);
      switch (in.op) {
        case Op::kPushInt:
        case Op::kPushBool:
        case Op::kLoadLocal:
        case Op::kStoreLocal:
        case Op::kLoadGlobal:
        case Op::kStoreGlobal:
          out += " ";
          out += std::to_string(in.imm_i);
          break;
        case Op::kPushFloat:
          out += " ";
          out += std::to_string(in.imm_f);
          break;
        case Op::kJmp:
        case Op::kJmpIfFalse:
          out += " L";
          out += std::to_string(in.imm_i);
          break;
        case Op::kCall:
          out += " ";
          out += program.functions[static_cast<size_t>(in.imm_i)].name;
          break;
        case Op::kSyscall:
          out += std::string(" ") + syscall_name(static_cast<Syscall>(in.imm_i));
          break;
        default:
          break;
      }
      out += "\n";
    }
    if (targets.contains(fn.code.size())) {
      out += "L";
      out += std::to_string(fn.code.size());
      out += ":\n";
    }
  }
  return out;
}

}  // namespace starfish::vm
