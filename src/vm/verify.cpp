#include "vm/verify.hpp"

#include <map>
#include <set>

namespace starfish::vm {

namespace {

const char* mnemonic(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kPushInt: return "push_int";
    case Op::kPushFloat: return "push_float";
    case Op::kPushBool: return "push_bool";
    case Op::kPushUnit: return "push_unit";
    case Op::kPop: return "pop";
    case Op::kDup: return "dup";
    case Op::kSwap: return "swap";
    case Op::kLoadLocal: return "load_local";
    case Op::kStoreLocal: return "store_local";
    case Op::kLoadGlobal: return "load_global";
    case Op::kStoreGlobal: return "store_global";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kNeg: return "neg";
    case Op::kFAdd: return "fadd";
    case Op::kFSub: return "fsub";
    case Op::kFMul: return "fmul";
    case Op::kFDiv: return "fdiv";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kNot: return "not";
    case Op::kI2F: return "i2f";
    case Op::kF2I: return "f2i";
    case Op::kJmp: return "jmp";
    case Op::kJmpIfFalse: return "jmp_if_false";
    case Op::kCall: return "call";
    case Op::kRet: return "ret";
    case Op::kHalt: return "halt";
    case Op::kNewArray: return "new_array";
    case Op::kNewBytes: return "new_bytes";
    case Op::kALoad: return "aload";
    case Op::kAStore: return "astore";
    case Op::kALen: return "alen";
    case Op::kSyscall: return "syscall";
  }
  return "?";
}

const char* syscall_name(Syscall s) {
  switch (s) {
    case Syscall::kPrint: return "print";
    case Syscall::kRank: return "rank";
    case Syscall::kWorldSize: return "world_size";
    case Syscall::kSendTo: return "send_to";
    case Syscall::kRecvFrom: return "recv_from";
    case Syscall::kCheckpoint: return "checkpoint";
    case Syscall::kSleepMs: return "sleep_ms";
    case Syscall::kSpin: return "spin";
    case Syscall::kBarrier: return "barrier";
    case Syscall::kAllreduceSum: return "allreduce_sum";
  }
  return nullptr;
}

util::Error bad(const Function& fn, size_t pc, const std::string& what) {
  return util::Error::make(
      "verify", fn.name + "+" + std::to_string(pc) + ": " + what);
}

}  // namespace

util::Status validate(const Program& program) {
  if (program.functions.empty()) {
    return util::Error::make("verify", "program has no functions");
  }
  if (program.function_index("main") < 0) {
    return util::Error::make("verify", "program has no 'main'");
  }
  std::set<std::string> names;
  for (const auto& fn : program.functions) {
    if (!names.insert(fn.name).second) {
      return util::Error::make("verify", "duplicate function '" + fn.name + "'");
    }
    if (fn.code.empty()) return util::Error::make("verify", fn.name + ": empty body");
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
      const Instr& in = fn.code[pc];
      switch (in.op) {
        case Op::kJmp:
        case Op::kJmpIfFalse:
          if (in.imm_i < 0 || static_cast<size_t>(in.imm_i) > fn.code.size()) {
            return bad(fn, pc, "jump target out of range");
          }
          break;
        case Op::kCall:
          if (in.imm_i < 0 ||
              static_cast<size_t>(in.imm_i) >= program.functions.size()) {
            return bad(fn, pc, "call target out of range");
          }
          break;
        case Op::kLoadLocal:
        case Op::kStoreLocal:
          if (in.imm_i < 0 || static_cast<size_t>(in.imm_i) >= fn.n_locals) {
            return bad(fn, pc, "local slot out of range");
          }
          break;
        case Op::kLoadGlobal:
        case Op::kStoreGlobal:
          if (in.imm_i < 0 || in.imm_i > 1'000'000) {
            return bad(fn, pc, "global slot out of range");
          }
          break;
        case Op::kSyscall:
          if (syscall_name(static_cast<Syscall>(in.imm_i)) == nullptr) {
            return bad(fn, pc, "unknown syscall id " + std::to_string(in.imm_i));
          }
          break;
        default:
          break;
      }
    }
    // Control must not run off the end: the final instruction must be an
    // unconditional transfer.
    const Op last = fn.code.back().op;
    if (last != Op::kHalt && last != Op::kRet && last != Op::kJmp) {
      return bad(fn, fn.code.size() - 1, "function can fall off its end");
    }
  }
  return util::Status::ok_status();
}

std::string disassemble(const Program& program) {
  std::string out;
  for (const auto& fn : program.functions) {
    // Collect jump targets for label synthesis.
    std::set<size_t> targets;
    for (const auto& in : fn.code) {
      if (in.op == Op::kJmp || in.op == Op::kJmpIfFalse) {
        targets.insert(static_cast<size_t>(in.imm_i));
      }
    }
    out += "func " + fn.name + " " + std::to_string(fn.n_args) + " " +
           std::to_string(fn.n_locals) + "\n";
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
      if (targets.contains(pc)) {
        out += "L";
        out += std::to_string(pc);
        out += ":\n";
      }
      const Instr& in = fn.code[pc];
      out += "  ";
      out += mnemonic(in.op);
      switch (in.op) {
        case Op::kPushInt:
        case Op::kPushBool:
        case Op::kLoadLocal:
        case Op::kStoreLocal:
        case Op::kLoadGlobal:
        case Op::kStoreGlobal:
          out += " ";
          out += std::to_string(in.imm_i);
          break;
        case Op::kPushFloat:
          out += " ";
          out += std::to_string(in.imm_f);
          break;
        case Op::kJmp:
        case Op::kJmpIfFalse:
          out += " L";
          out += std::to_string(in.imm_i);
          break;
        case Op::kCall:
          out += " ";
          out += program.functions[static_cast<size_t>(in.imm_i)].name;
          break;
        case Op::kSyscall:
          out += std::string(" ") + syscall_name(static_cast<Syscall>(in.imm_i));
          break;
        default:
          break;
      }
      out += "\n";
    }
    if (targets.contains(fn.code.size())) {
      out += "L";
      out += std::to_string(fn.code.size());
      out += ":\n";
    }
  }
  return out;
}

}  // namespace starfish::vm
