// Static validation, load-time analysis and disassembly of bytecode.
//
// validate() rejects programs the interpreter would only trap on at run
// time — out-of-range jump targets, bad call indices, out-of-range local
// slots, unknown syscalls — so broken programs fail at registration instead
// of mid-job. disassemble() renders a program back to the assembler's text
// form (round-trippable), which tests use to verify the assembler and
// humans use to debug.
//
// analyze() is the verifier upgrade behind the fast dispatcher: a forward
// abstract interpretation that proves, per instruction, the exact operand
// stack depth (relative to function entry) and the tags of the operands an
// instruction consumes. Instructions whose preconditions are proven run
// with underflow/type checks elided; everything unproven keeps the original
// fully-checked execution, so the analysis never changes behavior — it only
// licenses eliding checks that provably cannot fire.
#pragma once

#include <string>
#include <vector>

#include "vm/bytecode.hpp"

namespace starfish::vm {

/// Structural checks over every function of the program.
util::Status validate(const Program& program);

/// Text rendering in the assembler's format (labels synthesized as L<pc>).
std::string disassemble(const Program& program);

/// Facts proven about one function. When `analyzed` is false nothing was
/// proven (the dataflow hit a construct it cannot certify — inconsistent
/// stack depths at a merge point, a pop below the function's entry depth, a
/// call into a function that itself failed analysis, an unknown syscall id)
/// and every instruction keeps its runtime checks.
struct FunctionFacts {
  bool analyzed = false;
  /// Per pc: 1 = depth and operand tags proven, checks elidable.
  std::vector<uint8_t> fast;
  /// Per pc: for tag-dispatched ops (neg, compares) the proven operand tag
  /// class (`Tag` value); 0 elsewhere.
  std::vector<uint8_t> operand_tag;
  /// Per pc: exact operand-stack depth relative to function entry *before*
  /// the instruction executes; -1 = unreachable. Valid only when `analyzed`.
  std::vector<int32_t> depth;
  /// Max relative depth any reachable instruction produces (reserve hint).
  uint32_t max_stack = 0;
};

struct ProgramFacts {
  std::vector<FunctionFacts> functions;
  /// At least one function analyzed: the fast dispatcher is worth entering.
  bool any_fast = false;
};

/// Abstract interpretation over every function (safe on arbitrary programs,
/// validated or not; failures just disable elision, never reject).
ProgramFacts analyze(const Program& program);

}  // namespace starfish::vm
