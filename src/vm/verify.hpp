// Static validation and disassembly of bytecode programs.
//
// validate() rejects programs the interpreter would only trap on at run
// time — out-of-range jump targets, bad call indices, out-of-range local
// slots, unknown syscalls — so broken programs fail at registration instead
// of mid-job. disassemble() renders a program back to the assembler's text
// form (round-trippable), which tests use to verify the assembler and
// humans use to debug.
#pragma once

#include <string>

#include "vm/bytecode.hpp"

namespace starfish::vm {

/// Structural checks over every function of the program.
util::Status validate(const Program& program);

/// Text rendering in the assembler's format (labels synthesized as L<pc>).
std::string disassemble(const Program& program);

}  // namespace starfish::vm
