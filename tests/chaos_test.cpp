// Chaos harness: seeded fault injection against the full stack.
//
// Two layers of test. The GCS layer drives the group protocol through
// message loss, duplication, jitter, partitions and targeted drops, and
// asserts the virtual-synchrony contract survives (everyone delivers the
// same sequence, membership converges, no silent message loss). The
// cluster layer runs the example ring application under every C/R
// protocol with a lossy control plane, a jittery data plane and a
// mid-run node crash, and asserts the job still finishes with the exact
// fault-free answer. Every fault decision draws from the engine's seeded
// RNG, so each test is a deterministic replay: the determinism tests
// assert that the same seed reproduces the identical fault trace and the
// identical final state.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "gcs/endpoint.hpp"
#include "gcs/wire.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"
#include "sim/engine.hpp"

namespace starfish::gcs {
namespace {

using sim::milliseconds;
using sim::seconds;

util::Bytes text(const std::string& s) {
  util::Bytes b;
  util::Writer w(b);
  w.raw(std::as_bytes(std::span<const char>(s.data(), s.size())));
  return b;
}

std::string untext(const util::Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// True when `small` appears in `big` in order (possibly with gaps).
bool is_subsequence(const std::vector<std::string>& small, const std::vector<std::string>& big) {
  size_t j = 0;
  for (const auto& s : big) {
    if (j < small.size() && s == small[j]) ++j;
  }
  return j == small.size();
}

/// N members founding one group on a seeded engine; records every
/// delivery and view per member. The seed matters: fault verdicts draw
/// from the engine RNG, so the whole run is a function of (topology,
/// fault plan, seed).
struct ChaosGroup {
  sim::Engine eng;
  net::Network net{eng};
  GroupConfig config;
  std::vector<std::unique_ptr<GroupEndpoint>> eps;
  std::vector<std::vector<std::string>> delivered;  // per member: "origin:payload"
  std::vector<std::vector<View>> views;             // per member

  explicit ChaosGroup(size_t n, uint64_t seed, GroupConfig cfg = {}) : eng(seed), config(cfg) {
    delivered.resize(n);
    views.resize(n);
    std::vector<net::NetAddr> founders;
    for (size_t i = 0; i < n; ++i) {
      auto host = net.add_host("node" + std::to_string(i));
      founders.push_back({host->id(), config.control_port});
    }
    for (size_t i = 0; i < n; ++i) {
      eps.push_back(std::make_unique<GroupEndpoint>(net, *net.host(static_cast<sim::HostId>(i)),
                                                    config, callbacks(i)));
    }
    for (auto& ep : eps) ep->start_founding(founders);
  }

  Callbacks callbacks(size_t slot) {
    Callbacks cbs;
    cbs.on_view = [this, slot](const View& v) { views[slot].push_back(v); };
    cbs.on_message = [this, slot](MemberId origin, const util::Bytes& payload) {
      delivered[slot].push_back(origin.to_string() + ":" + untext(payload));
    };
    return cbs;
  }

  net::FaultInjector& faults() { return net.faults(); }
  void run_for(sim::Duration d) { eng.run_for(d); }
};

// --------------------------------------------- satellite regressions ----

// Regression for the holdback-discard bug: FLUSH_OK only forwarded the
// *delivered* retransmission log, so a sequenced message sitting in a
// survivor's holdback queue (received out of order) vanished when the
// only member that had delivered it died. Kill the sequencer mid-fanout
// with the two ORDER copies crossed over: one survivor has gseq 3 only
// in holdback, the other has never seen it. The flush must still
// reassemble and deliver all three messages on both survivors.
TEST(GroupChaos, HoldbackSurvivesSequencerCrashMidFanout) {
  ChaosGroup c(3, /*seed=*/1);
  c.net.host(0)->spawn("sender", [&] {
    c.eng.sleep(milliseconds(10));
    c.eps[0]->multicast(text("a"));
    c.eng.sleep(milliseconds(6));  // filter lands at 15 ms, before b/c
    c.eps[0]->multicast(text("b"));
    c.eng.sleep(milliseconds(1));
    c.eps[0]->multicast(text("c"));
  });
  // Cross the fan-out: member 1 never sees gseq 3, member 2 never sees
  // gseq 2 (so gseq 3 parks in its holdback queue).
  c.eng.schedule(milliseconds(15), [&] {
    c.faults().set_filter([](const net::Packet& p, net::TransportKind) {
      auto m = WireMsg::decode(p.payload);
      if (!m.ok() || m.value().kind != MsgKind::kOrder) return false;
      return (m.value().gseq == 2 && p.dst.host == 2) || (m.value().gseq == 3 && p.dst.host == 1);
    });
  });
  c.eng.schedule(milliseconds(30), [&] { c.net.crash_host(0); });
  c.eng.schedule(milliseconds(40), [&] { c.faults().set_filter(nullptr); });
  c.run_for(seconds(1.5));

  const std::vector<std::string> want = {"m0.0:a", "m0.0:b", "m0.0:c"};
  EXPECT_EQ(c.delivered[1], want);
  EXPECT_EQ(c.delivered[2], want);
  EXPECT_GT(c.faults().counters().filter_drops, 0u);
  EXPECT_EQ(c.eps[1]->view().size(), 2u);
  EXPECT_EQ(c.eps[1]->view().view_id, c.eps[2]->view().view_id);
}

// Regression for the hardcoded-incarnation bug: start_founding recorded
// every founder as incarnation 0, so a host that had already
// crashed+rebooted before the group formed was listed under a dead
// identity — its heartbeats never matched the view entry and it was
// falsely excluded ~250 ms in. The founder must record its own real
// incarnation, and peers must upgrade their entry on first contact.
TEST(GroupChaos, FoundingUsesLiveIncarnationOfRebootedHost) {
  sim::Engine eng;
  net::Network net{eng};
  GroupConfig config;
  for (int i = 0; i < 3; ++i) net.add_host("node" + std::to_string(i));
  net.crash_host(1);
  net.host(1)->reboot();
  ASSERT_EQ(net.host(1)->incarnation(), 1u);

  std::vector<std::vector<std::string>> delivered(3);
  std::vector<std::vector<View>> views(3);
  std::vector<std::unique_ptr<GroupEndpoint>> eps;
  std::vector<net::NetAddr> founders;
  for (sim::HostId i = 0; i < 3; ++i) founders.push_back({i, config.control_port});
  for (size_t i = 0; i < 3; ++i) {
    Callbacks cbs;
    cbs.on_view = [&views, i](const View& v) { views[i].push_back(v); };
    cbs.on_message = [&delivered, i](MemberId origin, const util::Bytes& payload) {
      delivered[i].push_back(origin.to_string() + ":" + untext(payload));
    };
    eps.push_back(std::make_unique<GroupEndpoint>(net, *net.host(static_cast<sim::HostId>(i)),
                                                  config, std::move(cbs)));
  }
  for (auto& ep : eps) ep->start_founding(founders);
  // Multicast from the rebooted host well after the suspect timeout: if
  // the old identity were still in the view it would be excluded by now.
  net.host(1)->spawn("sender", [&] {
    eng.sleep(milliseconds(400));
    eps[1]->multicast(text("reborn"));
  });
  eng.run_for(seconds(1));

  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(views[i].size(), 1u) << "member " << i << " saw a spurious view change";
    ASSERT_EQ(delivered[i].size(), 1u) << "member " << i;
    EXPECT_EQ(delivered[i][0], "m1.1:reborn");
    EXPECT_EQ(eps[i]->view().size(), 3u);
    EXPECT_TRUE(eps[i]->view().contains(MemberId{1, 1}));
    EXPECT_FALSE(eps[i]->view().contains(MemberId{1, 0}));
  }
}

// ------------------------------------------------- liveness + safety ----

// A lossy, duplicating, jittery control plane must not lose or reorder
// group messages: the retransmission machinery (heartbeat-driven ORDER
// gap repair, ORDER_REQ resubmission) has to deliver every multicast to
// every member in one agreed order, with the faults still active.
TEST(GroupChaos, AllDeliverEverythingUnderLossyControlPlane) {
  ChaosGroup c(4, /*seed=*/2);
  c.faults().set_transport(net::TransportKind::kTcpIp,
                           {.drop = 0.05, .duplicate = 0.05, .jitter = sim::microseconds(200)});
  for (size_t i = 0; i < 4; ++i) {
    auto* ep = c.eps[i].get();
    c.net.host(static_cast<sim::HostId>(i))->spawn("sender", [ep, i, &c] {
      for (int k = 0; k < 5; ++k) {
        c.eng.sleep(milliseconds(10 + static_cast<int>(i)));
        ep->multicast(text("m" + std::to_string(i) + "." + std::to_string(k)));
      }
    });
  }
  c.run_for(seconds(4));

  ASSERT_EQ(c.delivered[0].size(), 20u);
  for (size_t i = 1; i < 4; ++i) EXPECT_EQ(c.delivered[i], c.delivered[0]) << "member " << i;
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(c.eps[i]->view().size(), 4u) << "member " << i << " falsely excluded someone";
  }
  EXPECT_GT(c.faults().counters().datagrams_dropped, 0u);
  EXPECT_GT(c.faults().counters().datagrams_duplicated, 0u);
}

// A partition shorter than the suspect timeout must be absorbed without
// any membership change: messages sequenced during the cut reach the
// dark side via gap repair, and a multicast stuck on the dark side is
// resubmitted once the partition heals.
TEST(GroupChaos, ShortPartitionHealsWithoutViewChange) {
  ChaosGroup c(4, /*seed=*/3);
  c.eng.schedule(milliseconds(100), [&] { c.faults().partition({0, 1}, {2, 3}); });
  c.eng.schedule(milliseconds(220), [&] { c.faults().heal(); });
  c.net.host(0)->spawn("sender", [&] {
    c.eng.sleep(milliseconds(110));
    c.eps[0]->multicast(text("a"));
    c.eng.sleep(milliseconds(20));
    c.eps[0]->multicast(text("b"));
    c.eng.sleep(milliseconds(20));
    c.eps[0]->multicast(text("c"));
  });
  c.net.host(2)->spawn("sender", [&] {
    c.eng.sleep(milliseconds(130));
    c.eps[2]->multicast(text("d"));  // ORDER_REQ dies in the partition
  });
  c.run_for(seconds(1.5));

  const std::vector<std::string> want = {"m0.0:a", "m0.0:b", "m0.0:c", "m2.0:d"};
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(c.delivered[i], want) << "member " << i;
    EXPECT_EQ(c.views[i].size(), 1u) << "member " << i << " saw a view change";
  }
  EXPECT_GT(c.faults().counters().partition_drops, 0u);
  EXPECT_FALSE(c.faults().partitioned());
}

// An asymmetric outage (one member's outbound traffic blackholed) runs
// the full failure-detection path: the silent member is excluded, keeps
// running in its stale view, learns of the newer view from heartbeats
// once traffic flows again (INSTALL_REQ), and rejoins automatically.
TEST(GroupChaos, SilencedMemberIsExcludedThenRejoins) {
  ChaosGroup c(4, /*seed=*/4);
  c.eng.schedule(milliseconds(100), [&] {
    c.faults().set_filter(
        [](const net::Packet& p, net::TransportKind) { return p.src.host == 3; });
  });
  c.eng.schedule(milliseconds(600), [&] { c.faults().set_filter(nullptr); });
  c.run_for(milliseconds(600));
  // The survivors must have excluded the silent member by now.
  ASSERT_GE(c.views[0].size(), 2u);
  EXPECT_EQ(c.views[0].back().size(), 3u);
  EXPECT_FALSE(c.views[0].back().contains(MemberId{3, 0}));

  c.run_for(seconds(2));  // heal; rejoin via INSTALL_REQ + join

  c.net.host(0)->spawn("sender", [&] { c.eps[0]->multicast(text("after")); });
  c.run_for(milliseconds(200));
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(c.eps[i]->in_view()) << "member " << i;
    EXPECT_EQ(c.eps[i]->view().size(), 4u) << "member " << i;
    EXPECT_EQ(c.eps[i]->view().view_id, c.eps[0]->view().view_id) << "member " << i;
    EXPECT_TRUE(c.eps[i]->view().contains(MemberId{3, 0})) << "member " << i;
    ASSERT_FALSE(c.delivered[i].empty()) << "member " << i;
    EXPECT_EQ(c.delivered[i].back(), "m0.0:after") << "member " << i;
  }
  EXPECT_GT(c.faults().counters().filter_drops, 0u);
}

// Membership churn (two late joins and a graceful leave) while the
// control plane is lossy. Everything converges: one agreed final view,
// founders deliver the identical full sequence, joiners deliver an
// order-consistent subsequence (virtual synchrony across the views they
// were members of), and a post-churn multicast reaches everyone.
TEST(GroupChaos, ChurnUnderFaultsConverges) {
  ChaosGroup c(3, /*seed=*/5);
  c.faults().set_transport(net::TransportKind::kTcpIp,
                           {.drop = 0.03, .duplicate = 0.03, .jitter = sim::microseconds(100)});
  auto h3 = c.net.add_host("node3");
  auto h4 = c.net.add_host("node4");
  std::vector<std::vector<std::string>> jdelivered(2);
  std::vector<std::unique_ptr<GroupEndpoint>> joiners;
  for (size_t j = 0; j < 2; ++j) {
    Callbacks cbs;
    cbs.on_view = [](const View&) {};
    cbs.on_message = [&jdelivered, j](MemberId origin, const util::Bytes& payload) {
      jdelivered[j].push_back(origin.to_string() + ":" + untext(payload));
    };
    joiners.push_back(
        std::make_unique<GroupEndpoint>(c.net, j == 0 ? *h3 : *h4, c.config, std::move(cbs)));
  }
  const std::vector<net::NetAddr> seeds = {
      {0, c.config.control_port}, {1, c.config.control_port}, {2, c.config.control_port}};
  c.eng.schedule(milliseconds(200), [&] { joiners[0]->start_joining(seeds); });
  c.eng.schedule(milliseconds(500), [&] { joiners[1]->start_joining(seeds); });
  c.eng.schedule(milliseconds(800), [&] {
    c.net.host(2)->spawn("leaver", [&] { c.eps[2]->leave(); });
  });
  c.net.host(0)->spawn("sender", [&] {
    for (int k = 0; k < 16; ++k) {
      c.eng.sleep(milliseconds(40));
      c.eps[0]->multicast(text("m" + std::to_string(k)));
    }
  });
  c.run_for(seconds(4));
  c.faults().clear();  // let stragglers settle on a clean fabric
  c.run_for(seconds(1));
  c.net.host(0)->spawn("sender2", [&] { c.eps[0]->multicast(text("final")); });
  c.run_for(milliseconds(200));

  ASSERT_EQ(c.delivered[0].size(), 17u);
  EXPECT_EQ(c.delivered[1], c.delivered[0]);
  for (size_t j = 0; j < 2; ++j) {
    EXPECT_TRUE(is_subsequence(jdelivered[j], c.delivered[0])) << "joiner " << j;
    ASSERT_FALSE(jdelivered[j].empty()) << "joiner " << j;
    EXPECT_EQ(jdelivered[j].back(), "m0.0:final") << "joiner " << j;
  }
  const View& final_view = c.eps[0]->view();
  EXPECT_EQ(final_view.size(), 4u);
  EXPECT_FALSE(final_view.contains(MemberId{2, 0}));
  EXPECT_TRUE(final_view.contains(MemberId{3, 0}));
  EXPECT_TRUE(final_view.contains(MemberId{4, 0}));
  EXPECT_EQ(c.eps[1]->view().view_id, final_view.view_id);
  EXPECT_EQ(joiners[0]->view().view_id, final_view.view_id);
  EXPECT_EQ(joiners[1]->view().view_id, final_view.view_id);
  EXPECT_GT(c.faults().counters().total(), 0u);
}

// ------------------------------------------------ tree dissemination ----

GroupConfig tree_config(uint32_t fanout = 4) {
  GroupConfig cfg;
  cfg.topology = Topology::kTree;
  cfg.tree_fanout = fanout;
  return cfg;
}

// Crash an *interior* tree node while traffic flows: at n=16, k=4, host 1
// relays ORDER to children 5..8 and aggregates their heartbeats. Its death
// orphans that whole subtree. Orphans must keep receiving the stream (root
// gap-repairs them off their re-routed up-beats), must not be falsely
// excluded, and the group converges on the 15-member view with everyone
// delivering the identical sequence.
TEST(GroupChaos, TreeInteriorCrashConvergesAndDelivers) {
  ChaosGroup c(16, /*seed=*/6, tree_config());
  c.net.host(0)->spawn("sender", [&] {
    for (int k = 0; k < 30; ++k) {
      c.eng.sleep(milliseconds(20));
      c.eps[0]->multicast(text("m" + std::to_string(k)));
    }
  });
  c.eng.schedule(milliseconds(210), [&] { c.net.crash_host(1); });
  c.run_for(seconds(3));

  ASSERT_EQ(c.delivered[0].size(), 30u);
  for (size_t i = 0; i < 16; ++i) {
    if (i == 1) continue;
    EXPECT_EQ(c.delivered[i], c.delivered[0]) << "member " << i;
    EXPECT_EQ(c.eps[i]->view().size(), 15u) << "member " << i;
    EXPECT_FALSE(c.eps[i]->view().contains(MemberId{1, 0})) << "member " << i;
    // No orphan (ex-child of host 1) was dragged out with its parent.
    for (sim::HostId orphan : {5u, 6u, 7u, 8u}) {
      EXPECT_TRUE(c.eps[i]->view().contains(MemberId{orphan, 0}))
          << "member " << i << " falsely excluded orphan " << orphan;
    }
  }
}

// Membership churn on a deep tree (k=2) with a lossy control plane: a late
// join and a graceful leave both rebuild the tree; messages crossing the
// rebuilds still deliver in one agreed order everywhere.
TEST(GroupChaos, TreeChurnUnderFaultsConverges) {
  ChaosGroup c(8, /*seed=*/7, tree_config(/*fanout=*/2));
  c.faults().set_transport(net::TransportKind::kTcpIp,
                           {.drop = 0.03, .duplicate = 0.03, .jitter = sim::microseconds(100)});
  auto h8 = c.net.add_host("node8");
  std::vector<std::string> jdelivered;
  Callbacks jcbs;
  jcbs.on_message = [&jdelivered](MemberId origin, const util::Bytes& payload) {
    jdelivered.push_back(origin.to_string() + ":" + untext(payload));
  };
  auto joiner = std::make_unique<GroupEndpoint>(c.net, *h8, c.config, std::move(jcbs));
  c.eng.schedule(milliseconds(300), [&] {
    joiner->start_joining({{0, c.config.control_port}, {1, c.config.control_port}});
  });
  c.eng.schedule(milliseconds(700), [&] {
    c.net.host(7)->spawn("leaver", [&] { c.eps[7]->leave(); });
  });
  c.net.host(0)->spawn("sender", [&] {
    for (int k = 0; k < 16; ++k) {
      c.eng.sleep(milliseconds(60));
      c.eps[0]->multicast(text("m" + std::to_string(k)));
    }
  });
  c.run_for(seconds(4));
  c.faults().clear();
  c.run_for(seconds(1));
  c.net.host(0)->spawn("sender2", [&] { c.eps[0]->multicast(text("final")); });
  c.run_for(milliseconds(300));

  ASSERT_EQ(c.delivered[0].size(), 17u);
  for (size_t i = 1; i < 7; ++i) EXPECT_EQ(c.delivered[i], c.delivered[0]) << "member " << i;
  EXPECT_TRUE(is_subsequence(jdelivered, c.delivered[0]));
  ASSERT_FALSE(jdelivered.empty());
  EXPECT_EQ(jdelivered.back(), "m0.0:final");
  const View& final_view = c.eps[0]->view();
  EXPECT_EQ(final_view.size(), 8u);
  EXPECT_FALSE(final_view.contains(MemberId{7, 0}));
  EXPECT_TRUE(final_view.contains(MemberId{8, 0}));
  EXPECT_EQ(joiner->view().view_id, final_view.view_id);
}

// ------------------------------------------- leave/rejoin regressions ----

// LEAVE_REQ is a single datagram to the coordinator; before the per-beat
// retry a lost one stranded the leaver forever (still heartbeating, never
// excluded). Drop the first two and the leave must still complete.
TEST(GroupChaos, LeaveCompletesDespiteDroppedLeaveReq) {
  for (Topology topo : {Topology::kFlat, Topology::kTree}) {
    GroupConfig cfg;
    cfg.topology = topo;
    ChaosGroup c(3, /*seed=*/8, cfg);
    auto dropped = std::make_shared<int>(0);
    c.faults().set_filter([dropped](const net::Packet& p, net::TransportKind) {
      auto m = WireMsg::decode(p.payload);
      if (!m.ok() || m.value().kind != MsgKind::kLeaveReq) return false;
      if (*dropped >= 2) return false;
      ++*dropped;
      return true;
    });
    c.eng.schedule(milliseconds(100), [&] {
      c.net.host(2)->spawn("leaver", [&] { c.eps[2]->leave(); });
    });
    c.run_for(seconds(2));
    EXPECT_EQ(*dropped, 2) << "topology " << static_cast<int>(topo);
    for (size_t i = 0; i < 2; ++i) {
      EXPECT_EQ(c.eps[i]->view().size(), 2u)
          << "member " << i << " topology " << static_cast<int>(topo);
      EXPECT_FALSE(c.eps[i]->view().contains(MemberId{2, 0})) << "member " << i;
    }
    EXPECT_FALSE(c.eps[2]->in_view());
  }
}

// Regression for two rejoin staleness bugs. A member that leaves
// gracefully and rejoins under the same incarnation used to inherit
// (a) a stale last-heard timestamp, so delayed heartbeats got it
// re-suspected the moment it was readmitted, and (b) a stale per-origin
// msg-id high-water mark, so every multicast of its new life was silently
// discarded as a duplicate. Rejoin under delayed heartbeats; the rejoiner
// must stay in the view and its new multicasts must deliver.
TEST(GroupChaos, RejoinAfterGracefulLeaveStaysAndDelivers) {
  ChaosGroup c(3, /*seed=*/9);
  c.faults().set_transport(net::TransportKind::kTcpIp,
                           {.delay = sim::milliseconds(15), .jitter = sim::milliseconds(10)});
  c.net.host(2)->spawn("traffic", [&] {
    c.eng.sleep(milliseconds(50));
    c.eps[2]->multicast(text("before"));  // advances m2.0's msg-id watermark
  });
  c.eng.schedule(milliseconds(200), [&] {
    c.net.host(2)->spawn("leaver", [&] { c.eps[2]->leave(); });
  });
  c.run_for(seconds(1));
  ASSERT_EQ(c.eps[0]->view().size(), 2u);

  // New endpoint object, same host, same incarnation (the host never
  // crashed) — exactly the identity the stale bookkeeping tripped over.
  // Tear the old one down first so the control port is free to rebind.
  c.eps[2]->shutdown();
  c.eps[2].reset();
  c.eps[2] = std::make_unique<GroupEndpoint>(c.net, *c.net.host(2), c.config, c.callbacks(2));
  c.eps[2]->start_joining({{0, c.config.control_port}, {1, c.config.control_port}});
  c.run_for(seconds(1));
  ASSERT_TRUE(c.eps[2]->in_view());
  ASSERT_EQ(c.eps[0]->view().size(), 3u);
  const uint64_t readmitted_view = c.eps[0]->view().view_id;

  // Retention: heartbeats still delayed; the rejoiner must not be
  // re-suspected off its pre-leave last-heard timestamp.
  c.run_for(seconds(1.5));
  EXPECT_EQ(c.eps[0]->view().view_id, readmitted_view) << "rejoiner was kicked again";
  EXPECT_TRUE(c.eps[0]->view().contains(MemberId{2, 0}));

  // New-life multicasts restart msg-ids at 1; they must not be dropped
  // against the previous life's watermark.
  c.net.host(2)->spawn("traffic2", [&] { c.eps[2]->multicast(text("after")); });
  c.run_for(milliseconds(400));
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_FALSE(c.delivered[i].empty()) << "member " << i;
    EXPECT_EQ(c.delivered[i].back(), "m2.0:after") << "member " << i;
  }
}

// ----------------------------------------- view-change retransmission ----

// Back-to-back view changes with overlapping retransmission tails: the
// sequencer dies mid-fanout (two survivors each missing a different gseq),
// then the next coordinator dies during/right after the first change, so
// the second flush re-forwards a tail overlapping the first one. Holdback
// dedupe must collapse every copy to exactly one delivery, flat and tree.
TEST(GroupChaos, OverlappingRetransmitTailsDeliverOnce) {
  for (Topology topo : {Topology::kFlat, Topology::kTree}) {
    GroupConfig cfg;
    cfg.topology = topo;
    cfg.tree_fanout = 2;
    ChaosGroup c(5, /*seed=*/10, cfg);
    c.net.host(0)->spawn("sender", [&] {
      c.eng.sleep(milliseconds(10));
      c.eps[0]->multicast(text("a"));
      c.eng.sleep(milliseconds(6));
      c.eps[0]->multicast(text("b"));
      c.eng.sleep(milliseconds(1));
      c.eps[0]->multicast(text("c"));
    });
    // Cross the fanout: host 2 misses gseq 2 (gseq 3 parks in holdback),
    // host 3 misses gseq 3.
    c.eng.schedule(milliseconds(15), [&] {
      c.faults().set_filter([](const net::Packet& p, net::TransportKind) {
        auto m = WireMsg::decode(p.payload);
        if (!m.ok() || m.value().kind != MsgKind::kOrder) return false;
        return (m.value().gseq == 2 && p.dst.host == 2) ||
               (m.value().gseq == 3 && p.dst.host == 3);
      });
    });
    c.eng.schedule(milliseconds(30), [&] { c.net.crash_host(0); });
    // From 40 ms on: let ORDER traffic through again, but blackhole every
    // FLUSH_OK addressed to host 1 — the first change coordinator can
    // collect flushes (with their retransmit tails) but never complete, so
    // the members' flush timeout forces a second change under host 2 that
    // re-collects the *same* tails.
    c.eng.schedule(milliseconds(40), [&] {
      c.faults().set_filter([](const net::Packet& p, net::TransportKind) {
        auto m = WireMsg::decode(p.payload);
        return m.ok() && m.value().kind == MsgKind::kFlushOk && p.dst.host == 1;
      });
    });
    // Kill the next coordinator while its (stalled) change is in flight.
    c.eng.schedule(milliseconds(300), [&] { c.net.crash_host(1); });
    c.run_for(seconds(3));

    const std::vector<std::string> want = {"m0.0:a", "m0.0:b", "m0.0:c"};
    for (size_t i = 2; i < 5; ++i) {
      EXPECT_EQ(c.delivered[i], want)
          << "member " << i << " topology " << static_cast<int>(topo);
      EXPECT_EQ(c.eps[i]->view().size(), 3u) << "member " << i;
    }
    EXPECT_EQ(c.eps[2]->view().view_id, c.eps[4]->view().view_id);
  }
}

// The INSTALL retransmission tail is GC'd against the minimum delivered
// gseq advertised in FLUSH_OK: after a long stable run, a view change must
// re-forward only the unstable suffix, not the whole view's history.
TEST(GroupChaos, ViewChangeRetransmitBoundedByStability) {
  obs::Hub hub;
  ChaosGroup c(4, /*seed=*/11);
  c.eng.set_obs(&hub);
  c.net.host(0)->spawn("sender", [&] {
    for (int k = 0; k < 60; ++k) {
      c.eng.sleep(milliseconds(25));
      c.eps[0]->multicast(text("m" + std::to_string(k)));
    }
  });
  c.run_for(seconds(2));  // all 60 delivered and stable everywhere
  ASSERT_EQ(c.delivered[1].size(), 60u);
  c.net.crash_host(3);
  c.run_for(seconds(1.5));
  ASSERT_EQ(c.eps[0]->view().size(), 3u);
  const obs::Counter* retx = hub.metrics.find_counter("gcs.install_retransmit_msgs");
  ASSERT_NE(retx, nullptr);
  EXPECT_LE(retx->value(), 8u) << "view change re-forwarded the stable prefix";
}

// ------------------------------------------------------- determinism ----

struct GroupRun {
  std::vector<std::string> trace;
  std::vector<std::string> delivered;
  sim::Time end;
  net::FaultCounters counters;
};

GroupRun lossy_group_run(uint64_t seed) {
  ChaosGroup c(3, seed);
  c.faults().set_transport(net::TransportKind::kTcpIp,
                           {.drop = 0.08, .duplicate = 0.05, .jitter = sim::microseconds(300)});
  for (size_t i = 0; i < 3; ++i) {
    auto* ep = c.eps[i].get();
    c.net.host(static_cast<sim::HostId>(i))->spawn("sender", [ep, i, &c] {
      for (int k = 0; k < 4; ++k) {
        c.eng.sleep(milliseconds(15 + static_cast<int>(i)));
        ep->multicast(text("m" + std::to_string(i) + "." + std::to_string(k)));
      }
    });
  }
  c.run_for(seconds(3));
  return {c.faults().trace(), c.delivered[0], c.eng.now(), c.faults().counters()};
}

TEST(GroupChaos, SameSeedReplaysIdenticalFaultTrace) {
  const GroupRun a = lossy_group_run(42);
  const GroupRun b = lossy_group_run(42);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.counters.total(), b.counters.total());
  ASSERT_FALSE(a.trace.empty());

  const GroupRun d = lossy_group_run(43);
  EXPECT_NE(a.trace, d.trace) << "different seeds produced the same fault schedule";
}

}  // namespace
}  // namespace starfish::gcs

// ==================================================== cluster level ====

namespace starfish::core {
namespace {

using daemon::CkptLevel;
using daemon::CrProtocol;
using daemon::FtPolicy;
using daemon::JobSpec;
using sim::milliseconds;
using sim::seconds;

std::string ring_program(int rounds, int spin) {
  return R"(
func main 0 2
  syscall rank
  store_local 0
  syscall world_size
  store_local 1
  push_int 0
  store_global 0
  push_int 0
  store_global 1
loop:
  load_global 0
  push_int )" + std::to_string(rounds) + R"(
  ge
  jmp_if_false body
  jmp done
body:
  push_int )" + std::to_string(spin) + R"(
  syscall spin
  load_local 0
  push_int 0
  eq
  jmp_if_false relay
  push_int 1
  load_global 1
  syscall send_to
  push_int -1
  syscall recv_from
  store_global 1
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
relay:
  push_int -1
  syscall recv_from
  load_local 0
  add
  store_global 1
  load_local 0
  push_int 1
  add
  load_local 1
  mod
  load_global 1
  syscall send_to
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
done:
  load_local 0
  push_int 0
  eq
  jmp_if_false finish
  load_global 1
  syscall print
finish:
  halt
)";
}

int64_t expected_token(uint32_t n, int rounds) {
  int64_t per = 0;
  for (uint32_t r = 1; r < n; ++r) per += r;
  return per * rounds;
}

bool output_contains(const std::vector<std::string>& lines, const std::string& needle) {
  return std::any_of(lines.begin(), lines.end(),
                     [&](const std::string& l) { return l.find(needle) != std::string::npos; });
}

/// The standard chaos plan: a lossy, duplicating, jittery control plane
/// and a delay/jitter-only data plane. The BIP data path has no
/// retransmission layer (the paper's Myrinet is assumed reliable), so
/// chaos may slow it down but not lose from it — loss there is modelled
/// at the node level by crash_node.
void apply_chaos_plan(Cluster& cluster) {
  cluster.faults().set_transport(
      net::TransportKind::kTcpIp,
      {.drop = 0.02, .duplicate = 0.02, .jitter = sim::microseconds(100)});
  cluster.faults().set_transport(
      net::TransportKind::kBipMyrinet,
      {.delay = sim::microseconds(10), .jitter = sim::microseconds(100)});
}

JobSpec ring_job(const std::string& name, uint32_t nprocs, CrProtocol protocol) {
  JobSpec j;
  j.name = name;
  j.binary = "ring";
  j.nprocs = nprocs;
  j.policy = FtPolicy::kRestart;
  j.protocol = protocol;
  j.level = CkptLevel::kVm;
  j.ckpt_interval = milliseconds(50);
  return j;
}

// Sanity for the byte-identity claim: a cluster that never touches the
// fault API must never consult the RNG or count anything.
TEST(ClusterChaos, FaultFreeRunDrawsNoFaults) {
  ClusterOptions opts;
  opts.nodes = 3;
  Cluster cluster(std::move(opts));
  cluster.registry().register_vm("ring", ring_program(10, 20000));
  cluster.submit(ring_job("clean", 3, CrProtocol::kStopAndSync));
  ASSERT_TRUE(cluster.run_until_done("clean"));
  EXPECT_FALSE(cluster.faults().enabled());
  EXPECT_EQ(cluster.faults().counters().total(), 0u);
  EXPECT_TRUE(cluster.faults().trace().empty());
}

struct SweepParam {
  uint64_t seed;
  CrProtocol protocol;
  const char* name;
};

class ChaosSweep : public ::testing::TestWithParam<SweepParam> {};

// The headline chaos assertion: under the standard chaos plan plus a
// mid-run node crash, every C/R protocol still drives the ring app to
// completion with the analytically known (fault-free) answer.
TEST_P(ChaosSweep, RingSurvivesFaultsAndNodeCrash) {
  const SweepParam p = GetParam();
  ClusterOptions opts;
  opts.nodes = 4;
  opts.seed = p.seed;
  Cluster cluster(std::move(opts));
  cluster.registry().register_vm("ring", ring_program(40, 100000));
  cluster.boot();
  apply_chaos_plan(cluster);
  cluster.submit(ring_job("chaos", 4, p.protocol));
  cluster.run_for(milliseconds(150));
  cluster.crash_node(2);
  ASSERT_TRUE(cluster.run_until_done("chaos", seconds(240.0)));
  EXPECT_TRUE(output_contains(cluster.output("chaos"), std::to_string(expected_token(4, 40))));
  EXPECT_GT(cluster.faults().counters().total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByProtocol, ChaosSweep,
    ::testing::Values(SweepParam{1, CrProtocol::kStopAndSync, "Seed1StopAndSync"},
                      SweepParam{2, CrProtocol::kStopAndSync, "Seed2StopAndSync"},
                      SweepParam{3, CrProtocol::kStopAndSync, "Seed3StopAndSync"},
                      SweepParam{1, CrProtocol::kChandyLamport, "Seed1ChandyLamport"},
                      SweepParam{2, CrProtocol::kChandyLamport, "Seed2ChandyLamport"},
                      SweepParam{3, CrProtocol::kChandyLamport, "Seed3ChandyLamport"},
                      SweepParam{1, CrProtocol::kUncoordinated, "Seed1Uncoordinated"},
                      SweepParam{2, CrProtocol::kUncoordinated, "Seed2Uncoordinated"},
                      SweepParam{3, CrProtocol::kUncoordinated, "Seed3Uncoordinated"}),
    [](const ::testing::TestParamInfo<SweepParam>& info) { return info.param.name; });

struct ClusterRun {
  std::vector<std::string> output;
  std::vector<std::string> trace;
  sim::Time end;
};

ClusterRun chaos_cluster_run(uint64_t seed) {
  ClusterOptions opts;
  opts.nodes = 4;
  opts.seed = seed;
  Cluster cluster(std::move(opts));
  cluster.registry().register_vm("ring", ring_program(30, 100000));
  cluster.boot();
  apply_chaos_plan(cluster);
  cluster.submit(ring_job("replay", 4, CrProtocol::kChandyLamport));
  cluster.run_for(milliseconds(150));
  cluster.crash_node(2);
  EXPECT_TRUE(cluster.run_until_done("replay", seconds(240.0)));
  return {cluster.output("replay"), cluster.faults().trace(), cluster.engine().now()};
}

// Whole-stack determinism: the same seed replays the identical fault
// schedule, the identical application output and the identical virtual
// end time; a different seed diverges.
TEST(ClusterChaos, SameSeedReplaysIdenticalRun) {
  const ClusterRun a = chaos_cluster_run(7);
  const ClusterRun b = chaos_cluster_run(7);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.end, b.end);
  ASSERT_FALSE(a.trace.empty());

  const ClusterRun d = chaos_cluster_run(8);
  EXPECT_NE(a.trace, d.trace) << "different seeds produced the same fault schedule";
}

}  // namespace
}  // namespace starfish::core
