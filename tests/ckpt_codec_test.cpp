// Compressed delta checkpoint pipeline (PR 10): LZ codec property tests,
// payload delta framing, corrupt-chain fallback in latest_recoverable, the
// four-mode store differential (restored bytes and content_hash must be
// invariant across off/lz/delta/delta+lz), replica warm-ship accounting,
// and cluster-level crash recovery under every mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "ckpt/codec.hpp"
#include "ckpt/incremental.hpp"
#include "ckpt/replica.hpp"
#include "ckpt/store.hpp"
#include "core/cluster.hpp"
#include "net/network.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "util/codec/lz.hpp"
#include "util/rng.hpp"

namespace starfish::util::codec {
namespace {

Bytes random_bytes(Rng& rng, size_t n) {
  Bytes b(n);
  for (auto& x : b) x = static_cast<std::byte>(rng.next() & 0xff);
  return b;
}

Bytes run_heavy_bytes(Rng& rng, size_t n) {
  Bytes b(n);
  size_t i = 0;
  while (i < n) {
    const size_t len = std::min<size_t>(1 + rng.below(300), n - i);
    const auto v = static_cast<std::byte>(rng.below(4) * 0x55);
    std::fill(b.begin() + static_cast<ptrdiff_t>(i), b.begin() + static_cast<ptrdiff_t>(i + len),
              v);
    i += len;
  }
  return b;
}

Bytes structured_bytes(size_t n) {
  // Repeating 32-byte records with a counter field: the shape of container
  // payloads (tracker entries, channel state) the lz matcher exists for.
  Bytes b(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t rec = i / 32;
    const size_t field = i % 32;
    b[i] = static_cast<std::byte>(field < 4 ? (rec >> (8 * field)) & 0xff : field * 7);
  }
  return b;
}

// Seeded random + pathological inputs: every generator and size must
// round-trip bit-exactly, verify clean, and announce the right raw size.
TEST(LzCodec, RoundTripsRandomAndPathologicalInputs) {
  Rng rng(0xc0dec);
  const size_t sizes[] = {0, 1, 3, 17, 63, 64, 65, 4095, 4096, 70000, 200001};
  for (size_t n : sizes) {
    const Bytes inputs[] = {Bytes(n, std::byte{0}), random_bytes(rng, n), run_heavy_bytes(rng, n),
                            structured_bytes(n)};
    for (const Bytes& raw : inputs) {
      const Bytes frame = lz_compress(as_bytes_view(raw));
      EXPECT_TRUE(lz_verify(as_bytes_view(frame)).ok()) << "n=" << n;
      auto announced = lz_raw_size(as_bytes_view(frame));
      ASSERT_TRUE(announced.ok()) << "n=" << n;
      EXPECT_EQ(announced.value(), n);
      auto back = lz_decompress(as_bytes_view(frame), n);
      ASSERT_TRUE(back.ok()) << "n=" << n;
      EXPECT_EQ(back.value(), raw) << "n=" << n;
      if (n > 0) {
        auto bounded = lz_decompress(as_bytes_view(frame), n - 1);
        EXPECT_FALSE(bounded.ok()) << "size bound not enforced at n=" << n;
      }
    }
  }
}

TEST(LzCodec, DeterministicAcrossCalls) {
  Rng rng(7);
  const Bytes raw = run_heavy_bytes(rng, 100000);
  EXPECT_EQ(lz_compress(as_bytes_view(raw)), lz_compress(as_bytes_view(raw)));
}

TEST(LzCodec, IncompressibleInputDegradesToStoredBlocks) {
  Rng rng(0xbad);
  const size_t n = 256 * 1024;
  const Bytes raw = random_bytes(rng, n);
  const Bytes frame = lz_compress(as_bytes_view(raw));
  const size_t blocks = (n + kLzBlockBytes - 1) / kLzBlockBytes;
  EXPECT_LE(frame.size(), n + 21 * blocks + 17) << "stored-block fallback blew the bound";
  auto back = lz_decompress(as_bytes_view(frame), n);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), raw);
}

TEST(LzCodec, RunHeavyInputCompressesHard) {
  const Bytes raw(128 * 1024, std::byte{0});
  const Bytes frame = lz_compress(as_bytes_view(raw));
  EXPECT_LT(frame.size(), raw.size() / 8);
}

// Robustness: every truncation point and every single-byte flip must be
// caught by verify or decode as a typed codec error — never UB, never a
// silent wrong payload. The frame's header fields and block bodies are all
// covered by structural checks or fingerprints, so detection is total.
TEST(LzCodec, TruncationAndBitFlipsYieldTypedErrors) {
  Rng rng(0x7f);
  const Bytes raw = structured_bytes(70000);  // spans two blocks
  const Bytes frame = lz_compress(as_bytes_view(raw));
  ASSERT_LT(frame.size(), raw.size());
  for (size_t cut = 0; cut < frame.size(); cut += 1 + cut / 3) {
    const BytesView prefix(frame.data(), cut);
    EXPECT_FALSE(lz_verify(prefix).ok()) << "cut=" << cut;
    auto back = lz_decompress(prefix, raw.size());
    ASSERT_FALSE(back.ok()) << "cut=" << cut;
    EXPECT_EQ(back.error().code, "codec");
  }
  for (size_t i = 0; i < frame.size(); i += 1 + rng.below(97)) {
    Bytes mangled = frame;
    mangled[i] ^= static_cast<std::byte>(1u << rng.below(8));
    if (mangled[i] == frame[i]) continue;
    const bool caught = !lz_verify(as_bytes_view(mangled)).ok() ||
                        !lz_decompress(as_bytes_view(mangled), raw.size()).ok();
    EXPECT_TRUE(caught) << "flip at " << i << " went undetected";
  }
}

}  // namespace
}  // namespace starfish::util::codec

namespace starfish::ckpt {
namespace {

using sim::milliseconds;
using sim::seconds;
using util::Bytes;

Bytes rand_payload(util::Rng& rng, size_t n) {
  Bytes b(n);
  for (auto& x : b) x = static_cast<std::byte>(rng.next() & 0xff);
  return b;
}

// ------------------------------------------------------ payload framing ----

TEST(PayloadCodec, DeltaEncodesOnlyDirtyPagesAsLiterals) {
  util::Rng rng(1);
  const Bytes base = rand_payload(rng, 64 * kPageBytes);
  Bytes raw = base;
  for (size_t i = 0; i < 64; ++i) {
    raw[5 * kPageBytes + i] ^= std::byte{0xff};
    raw[40 * kPageBytes + i] ^= std::byte{0x0f};
  }
  obs::Hub hub;
  const EncodedPayload enc = encode_payload(CompressMode::kDelta, util::as_bytes_view(raw),
                                            util::as_bytes_view(base), &hub);
  EXPECT_EQ(enc.codec, PayloadCodec::kDelta);
  EXPECT_EQ(enc.delta_page_literals, 2u);
  EXPECT_EQ(enc.delta_page_refs, 62u);
  EXPECT_LT(enc.bytes.size(), 3 * kPageBytes) << "two dirty pages should cost ~two pages";
  const auto* refs = hub.metrics.find_counter("ckpt.codec.delta_page_refs");
  const auto* literals = hub.metrics.find_counter("ckpt.codec.delta_page_literals");
  ASSERT_NE(refs, nullptr);
  ASSERT_NE(literals, nullptr);
  EXPECT_EQ(refs->value(), 62u);
  EXPECT_EQ(literals->value(), 2u);

  auto back = decode_payload(enc.codec, util::as_bytes_view(enc.bytes), util::as_bytes_view(base),
                             raw.size(), &hub);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), raw);
  auto announced = payload_raw_size(enc.codec, util::as_bytes_view(enc.bytes));
  ASSERT_TRUE(announced.ok());
  EXPECT_EQ(announced.value(), raw.size());
}

TEST(PayloadCodec, DeltaLzShrinksCompressibleLiterals) {
  // Compressible dirty pages: delta+lz must beat plain delta (the lz pass
  // squeezes the literal pages), and both must reconstruct bit-exactly.
  const Bytes base = util::codec::structured_bytes(32 * kPageBytes);
  Bytes raw = base;
  std::fill(raw.begin() + 3 * kPageBytes, raw.begin() + 5 * kPageBytes, std::byte{0x11});
  const EncodedPayload delta = encode_payload(CompressMode::kDelta, util::as_bytes_view(raw),
                                              util::as_bytes_view(base), nullptr);
  const EncodedPayload both = encode_payload(CompressMode::kDeltaLz, util::as_bytes_view(raw),
                                             util::as_bytes_view(base), nullptr);
  ASSERT_EQ(delta.codec, PayloadCodec::kDelta);
  ASSERT_EQ(both.codec, PayloadCodec::kDeltaLz);
  EXPECT_LT(both.bytes.size(), delta.bytes.size());
  for (const EncodedPayload* e : {&delta, &both}) {
    auto back = decode_payload(e->codec, util::as_bytes_view(e->bytes), util::as_bytes_view(base),
                               raw.size(), nullptr);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), raw);
  }
}

TEST(PayloadCodec, FallsBackToRawWhenCodingDoesNotPay) {
  util::Rng rng(2);
  const Bytes raw = rand_payload(rng, 8 * kPageBytes);
  // Incompressible input under lz: stored blocks would inflate, so raw wins.
  const EncodedPayload lz =
      encode_payload(CompressMode::kLz, util::as_bytes_view(raw), {}, nullptr);
  EXPECT_EQ(lz.codec, PayloadCodec::kRaw);
  EXPECT_EQ(lz.bytes, raw);
  // Delta without a base (first epoch) degrades to raw.
  const EncodedPayload cold =
      encode_payload(CompressMode::kDelta, util::as_bytes_view(raw), {}, nullptr);
  EXPECT_EQ(cold.codec, PayloadCodec::kRaw);
  // Delta against a base every page differs from: all-literal frame > raw.
  const Bytes unrelated = rand_payload(rng, raw.size());
  const EncodedPayload futile = encode_payload(CompressMode::kDelta, util::as_bytes_view(raw),
                                               util::as_bytes_view(unrelated), nullptr);
  EXPECT_EQ(futile.codec, PayloadCodec::kRaw);
  EXPECT_EQ(futile.bytes, raw);
}

TEST(PayloadCodec, DecodeRejectsBaseMismatchTruncationAndCorruption) {
  util::Rng rng(3);
  const Bytes base = rand_payload(rng, 16 * kPageBytes);
  Bytes raw = base;
  raw[7 * kPageBytes + 9] ^= std::byte{0x80};
  obs::Hub hub;
  const EncodedPayload enc = encode_payload(CompressMode::kDelta, util::as_bytes_view(raw),
                                            util::as_bytes_view(base), nullptr);
  ASSERT_EQ(enc.codec, PayloadCodec::kDelta);
  ASSERT_TRUE(verify_payload(enc.codec, util::as_bytes_view(enc.bytes)).ok());

  // Wrong base: structural verify still passes (it is base-independent) but
  // the decode must refuse via the pinned base fingerprint.
  Bytes wrong_base = base;
  wrong_base[123] ^= std::byte{1};
  auto mismatch = decode_payload(enc.codec, util::as_bytes_view(enc.bytes),
                                 util::as_bytes_view(wrong_base), raw.size(), &hub);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.error().code, "codec");
  EXPECT_NE(mismatch.error().message.find("base"), std::string::npos);

  // Announced-size bound: a frame may never drive an oversized allocation.
  EXPECT_FALSE(decode_payload(enc.codec, util::as_bytes_view(enc.bytes),
                              util::as_bytes_view(base), raw.size() - 1, &hub)
                   .ok());

  // Truncation and bit flips: the trailing frame fingerprint covers every
  // body byte, so all damage is caught by verify and decode alike.
  for (size_t cut = 0; cut < enc.bytes.size(); cut += 1 + cut / 2) {
    const util::BytesView prefix(enc.bytes.data(), cut);
    EXPECT_FALSE(verify_payload(enc.codec, prefix).ok()) << "cut=" << cut;
    EXPECT_FALSE(
        decode_payload(enc.codec, prefix, util::as_bytes_view(base), raw.size(), &hub).ok());
  }
  for (size_t i = 0; i < enc.bytes.size(); i += 1 + rng.below(61)) {
    Bytes mangled = enc.bytes;
    mangled[i] ^= std::byte{0x20};
    EXPECT_FALSE(verify_payload(enc.codec, util::as_bytes_view(mangled)).ok()) << "flip at " << i;
    EXPECT_FALSE(decode_payload(enc.codec, util::as_bytes_view(mangled),
                                util::as_bytes_view(base), raw.size(), &hub)
                     .ok())
        << "flip at " << i;
  }
  const auto* errors = hub.metrics.find_counter("ckpt.codec.decode_errors");
  ASSERT_NE(errors, nullptr);
  EXPECT_GT(errors->value(), 0u);

  // delta+lz wraps the same frame; a truncated outer stream must fail too.
  const EncodedPayload wrapped = encode_payload(CompressMode::kDeltaLz, util::as_bytes_view(raw),
                                                util::as_bytes_view(base), nullptr);
  ASSERT_EQ(wrapped.codec, PayloadCodec::kDeltaLz);
  const util::BytesView half(wrapped.bytes.data(), wrapped.bytes.size() / 2);
  EXPECT_FALSE(verify_payload(wrapped.codec, half).ok());
  EXPECT_FALSE(
      decode_payload(wrapped.codec, half, util::as_bytes_view(base), raw.size(), nullptr).ok());
}

// ------------------------------------------------- store differential ----

// Epoch payloads that are mostly stable across epochs: per-(rank, page)
// pattern with two stamped pages plus a partial tail page per epoch, so the
// delta modes see O(dirty pages) while every mode must restore identically.
Bytes epoch_payload(uint32_t rank, uint64_t epoch) {
  constexpr size_t kPages = 48;
  Bytes b(kPages * kPageBytes + 1234);
  for (size_t i = 0; i < b.size(); ++i) {
    const size_t p = i / kPageBytes;
    b[i] = static_cast<std::byte>((rank * 131 + p * 17 + i % 251) & 0xff);
  }
  const size_t d1 = (epoch % kPages) * kPageBytes;
  const size_t d2 = ((epoch * 7 + 3) % kPages) * kPageBytes;
  for (size_t i = 0; i < 64; ++i) {
    b[d1 + i] = static_cast<std::byte>((epoch * 31 + i) & 0xff);
    b[d2 + i] ^= std::byte{0x5a};
  }
  b[b.size() - 1] = static_cast<std::byte>(epoch & 0xff);
  return b;
}

Image payload_image(Bytes payload) {
  Image img;
  img.kind = ImageKind::kPortable;
  img.file_bytes = kPortableBaseBytes + payload.size();
  img.payload = std::move(payload);
  return img;
}

struct StoreRun {
  std::vector<Bytes> restored;  // get() payloads, key order
  uint64_t content_hash = 0;
  uint64_t bytes_written = 0;
};

StoreRun disk_run(CompressMode mode) {
  constexpr uint32_t kRanks = 2;
  constexpr uint64_t kEpochs = 7;
  sim::Engine eng;
  net::Network net{eng};
  for (int i = 0; i < 2; ++i) net.add_host("node" + std::to_string(i));
  CheckpointStore store{eng};
  store.set_compress_mode(mode);
  StoreRun out;
  net.host(0)->spawn("writer", [&] {
    for (uint64_t e = 1; e <= kEpochs; ++e) {
      for (uint32_t r = 0; r < kRanks; ++r) {
        store.put(*net.host(0), CkptKey{"app", r, e}, payload_image(epoch_payload(r, e)));
      }
      store.commit("app", e);
    }
    for (uint64_t e = 1; e <= kEpochs; ++e) {
      for (uint32_t r = 0; r < kRanks; ++r) {
        auto got = store.get(*net.host(1), CkptKey{"app", r, e});
        ASSERT_TRUE(got.has_value()) << compress_mode_name(mode) << " r" << r << " e" << e;
        EXPECT_EQ(got->codec, PayloadCodec::kRaw) << "store leaked coded bytes upward";
        out.restored.push_back(std::move(got->payload));
      }
    }
  });
  eng.run();
  out.content_hash = store.content_hash();
  out.bytes_written = store.bytes_written();
  return out;
}

// The acceptance differential: every mode restores bit-identical payloads
// and hashes to the same store content; the chained modes write less disk.
TEST(StoreCompressDifferential, AllModesRestoreIdenticalBytesAndHash) {
  const StoreRun off = disk_run(CompressMode::kOff);
  ASSERT_EQ(off.restored.size(), 14u);
  for (size_t i = 0; i < off.restored.size(); ++i) {
    EXPECT_EQ(off.restored[i], epoch_payload(static_cast<uint32_t>(i % 2), 1 + i / 2));
  }
  for (CompressMode mode :
       {CompressMode::kLz, CompressMode::kDelta, CompressMode::kDeltaLz}) {
    const StoreRun run = disk_run(mode);
    EXPECT_EQ(run.restored, off.restored) << compress_mode_name(mode);
    EXPECT_EQ(run.content_hash, off.content_hash) << compress_mode_name(mode);
    EXPECT_LT(run.bytes_written, off.bytes_written) << compress_mode_name(mode);
  }
  // Warm delta epochs are O(dirty pages): across 7 epochs x 2 ranks the
  // chained modes must write far less than half of what off writes beyond
  // the per-image base cost.
  const StoreRun delta = disk_run(CompressMode::kDeltaLz);
  const uint64_t base_cost = 14 * kPortableBaseBytes;
  EXPECT_LT(delta.bytes_written - base_cost, (off.bytes_written - base_cost) / 2);
}

// ------------------------------------------------ fault-injection tests ----

// Satellite (b): a corrupted or truncated coded chunk must surface as a
// typed decode failure and move latest_recoverable to the next epoch whose
// chain still verifies — never an abort, never a poisoned restore.
TEST(StoreFaultInjection, CorruptedChunksFallBackToOlderEpochs) {
  sim::Engine eng;
  obs::Hub hub;
  eng.set_obs(&hub);
  net::Network net{eng};
  net.add_host("node0");
  CheckpointStore store{eng};
  store.set_compress_mode(CompressMode::kDeltaLz);
  net.host(0)->spawn("writer", [&] {
    for (uint64_t e = 1; e <= 7; ++e) {
      store.put(*net.host(0), CkptKey{"app", 0, e}, payload_image(epoch_payload(0, e)));
      store.commit("app", e);
    }
  });
  eng.run();
  ASSERT_EQ(store.latest_recoverable("app", 1), 7u);

  // Flip a byte mid-frame in the newest epoch: its chain alone breaks.
  ASSERT_TRUE(store.corrupt_payload(CkptKey{"app", 0, 7}, 33));
  EXPECT_EQ(store.latest_recoverable("app", 1), 6u);

  // Truncate epoch 6: both 6 and (already-corrupt) 7 are gone; 5 is the
  // full anchor of this kFullEvery window and still verifies.
  ASSERT_TRUE(store.corrupt_payload(CkptKey{"app", 0, 6}, 4, /*truncate=*/true));
  EXPECT_EQ(store.latest_recoverable("app", 1), 5u);

  // Corrupt the full anchor itself: every delta hanging off it (6, 7) was
  // already dead; the previous window's chain 4 -> 3 -> 2 -> 1 survives.
  ASSERT_TRUE(store.corrupt_payload(CkptKey{"app", 0, 5}, 1000));
  EXPECT_EQ(store.latest_recoverable("app", 1), 4u);

  bool checked = false;
  net.host(0)->spawn("reader", [&] {
    // Reads of the damaged epochs fail soft (nullopt, counted) ...
    EXPECT_FALSE(store.get(*net.host(0), CkptKey{"app", 0, 7}).has_value());
    EXPECT_FALSE(store.get(*net.host(0), CkptKey{"app", 0, 5}).has_value());
    // ... and the fallback epoch restores bit-exactly through its chain.
    auto got = store.get(*net.host(0), CkptKey{"app", 0, 4});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload, epoch_payload(0, 4));
    checked = true;
  });
  eng.run();
  EXPECT_TRUE(checked);
  const auto* errors = hub.metrics.find_counter("ckpt.codec.decode_errors");
  ASSERT_NE(errors, nullptr);
  EXPECT_GT(errors->value(), 0u);
}

TEST(ReplicaFaultInjection, CorruptedReplicaChunkMovesTheRecoveryLine) {
  sim::Engine eng;
  net::Network net{eng};
  for (int i = 0; i < 4; ++i) net.add_host("node" + std::to_string(i));
  CheckpointStore store{eng};
  store.enable_replica_backend(net);
  store.set_backend(CkptBackend::kReplica);
  store.set_compress_mode(CompressMode::kDelta);
  net.host(0)->spawn("writer", [&] {
    for (uint64_t e = 1; e <= 3; ++e) {
      store.put(*net.host(0), CkptKey{"app", 0, e}, payload_image(epoch_payload(0, e)), {1, 2});
      store.commit("app", e);
    }
  });
  eng.run();
  ASSERT_EQ(store.latest_recoverable("app", 1), 3u);
  ASSERT_TRUE(store.corrupt_payload(CkptKey{"app", 0, 3}, 21));
  EXPECT_EQ(store.latest_recoverable("app", 1), 2u)
      << "a corrupt replica chunk must disqualify its chain, not abort";
  bool checked = false;
  net.host(3)->spawn("reader", [&] {
    EXPECT_FALSE(store.get(*net.host(3), CkptKey{"app", 0, 3}).has_value());
    auto got = store.get(*net.host(3), CkptKey{"app", 0, 2});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload, epoch_payload(0, 2));
    checked = true;
  });
  eng.run();
  EXPECT_TRUE(checked);
}

// --------------------------------------------------- replica warm ship ----

// Satellite (c): with the delta codec on, a warm epoch ships O(dirty pages)
// bytes to each holder, visible both in bytes_shipped and in the
// ckpt.codec.* counters.
TEST(ReplicaWarmShip, DeltaEpochsShipOnlyDirtyPages) {
  sim::Engine eng;
  obs::Hub hub;
  eng.set_obs(&hub);
  net::Network net{eng};
  for (int i = 0; i < 4; ++i) net.add_host("node" + std::to_string(i));
  CheckpointStore store{eng};
  store.enable_replica_backend(net);
  store.set_backend(CkptBackend::kReplica);
  store.set_compress_mode(CompressMode::kDelta);
  util::Rng rng(9);
  const Bytes cold_payload = rand_payload(rng, 64 * kPageBytes);  // incompressible
  Bytes warm_payload = cold_payload;
  for (size_t i = 0; i < kPageBytes; ++i) {
    warm_payload[11 * kPageBytes + i] = static_cast<std::byte>(rng.next() & 0xff);
  }
  uint64_t cold = 0, warm = 0;
  net.host(0)->spawn("writer", [&] {
    store.put(*net.host(0), CkptKey{"app", 0, 1}, payload_image(cold_payload), {1, 2});
    cold = store.replicas()->bytes_shipped();
    store.put(*net.host(0), CkptKey{"app", 0, 2}, payload_image(warm_payload), {1, 2});
    warm = store.replicas()->bytes_shipped() - cold;
  });
  eng.run();
  // Epoch 1 is the full anchor (no base): raw, 64 pages per holder.
  EXPECT_EQ(cold, 2 * (kReplicaHeaderBytes + 64 * kPageBytes));
  // Epoch 2 is a delta with exactly one literal page: the transfer is the
  // dirty page plus framing, per holder — two orders below the cold ship.
  EXPECT_LE(warm, 2 * (kReplicaHeaderBytes + 2 * kPageBytes));
  EXPECT_LT(warm * 20, cold);
  const auto* refs = hub.metrics.find_counter("ckpt.codec.delta_page_refs");
  const auto* literals = hub.metrics.find_counter("ckpt.codec.delta_page_literals");
  ASSERT_NE(refs, nullptr);
  ASSERT_NE(literals, nullptr);
  EXPECT_EQ(refs->value(), 63u);
  EXPECT_EQ(literals->value(), 1u);

  // And the warm epoch restores bit-exactly through its delta chain.
  bool checked = false;
  net.host(3)->spawn("reader", [&] {
    auto got = store.get(*net.host(3), CkptKey{"app", 0, 2});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload, warm_payload);
    checked = true;
  });
  eng.run();
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace starfish::ckpt

// ------------------------------------------------------ cluster level ----

namespace starfish::core {
namespace {

using sim::milliseconds;
using sim::seconds;

std::string ring_program(int rounds, int spin) {
  return R"(
func main 0 2
  syscall rank
  store_local 0
  syscall world_size
  store_local 1
  push_int 0
  store_global 0
  push_int 0
  store_global 1
loop:
  load_global 0
  push_int )" + std::to_string(rounds) + R"(
  ge
  jmp_if_false body
  jmp done
body:
  push_int )" + std::to_string(spin) + R"(
  syscall spin
  load_local 0
  push_int 0
  eq
  jmp_if_false relay
  push_int 1
  load_global 1
  syscall send_to
  push_int -1
  syscall recv_from
  store_global 1
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
relay:
  push_int -1
  syscall recv_from
  load_local 0
  add
  store_global 1
  load_local 0
  push_int 1
  add
  load_local 1
  mod
  load_global 1
  syscall send_to
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
done:
  load_local 0
  push_int 0
  eq
  jmp_if_false finish
  load_global 1
  syscall print
finish:
  halt
)";
}

int64_t expected_token(uint32_t n, int rounds) {
  int64_t per = 0;
  for (uint32_t r = 1; r < n; ++r) per += r;
  return per * rounds;
}

bool output_contains(const std::vector<std::string>& lines, const std::string& needle) {
  return std::any_of(lines.begin(), lines.end(), [&](const std::string& l) {
    return l.find(needle) != std::string::npos;
  });
}

daemon::JobSpec ring_job(const std::string& name, uint32_t nprocs) {
  daemon::JobSpec j;
  j.name = name;
  j.binary = "ring";
  j.nprocs = nprocs;
  j.policy = daemon::FtPolicy::kRestart;
  j.protocol = daemon::CrProtocol::kStopAndSync;
  j.level = daemon::CkptLevel::kVm;
  j.ckpt_interval = milliseconds(50);
  return j;
}

std::vector<std::string> crash_recovery_run(ckpt::CompressMode mode) {
  ClusterOptions opts;
  opts.nodes = 4;
  opts.ckpt_compress = mode;
  Cluster cluster(std::move(opts));
  cluster.registry().register_vm("ring", ring_program(30, 100000));
  cluster.submit(ring_job("codec", 4));
  cluster.run_for(milliseconds(300));
  EXPECT_TRUE(cluster.store().latest_committed("codec").has_value())
      << ckpt::compress_mode_name(mode) << ": nothing committed before the crash";
  cluster.crash_node(2);
  EXPECT_TRUE(cluster.run_until_done("codec", seconds(240.0))) << ckpt::compress_mode_name(mode);
  return cluster.output("codec");
}

// Crash mid-chain under every mode: recovery restores from a committed
// epoch whose payload travelled through the mode's codec, and the
// application result is identical across all four pipelines.
TEST(ClusterCompressDifferential, CrashRecoveryIsModeInvariant) {
  const std::vector<std::string> off = crash_recovery_run(ckpt::CompressMode::kOff);
  EXPECT_TRUE(output_contains(off, std::to_string(expected_token(4, 30))));
  for (ckpt::CompressMode mode : {ckpt::CompressMode::kLz, ckpt::CompressMode::kDelta,
                                  ckpt::CompressMode::kDeltaLz}) {
    EXPECT_EQ(crash_recovery_run(mode), off) << ckpt::compress_mode_name(mode);
  }
}

// Mixed-endianness SFV2 payloads through the coded pipeline: the crash
// moves rank placement across representations, so restore decompresses a
// delta+lz frame and then converts endianness/word size.
TEST(ClusterCompressHeterogeneous, DeltaLzRestoresAcrossRepresentations) {
  ClusterOptions opts;
  auto machines = sim::table2_machines();
  opts.machines = {machines[0], machines[1], machines[5], machines[2]};  // LE32, BE32, LE64, BE32
  opts.nodes = 4;
  opts.ckpt_compress = ckpt::CompressMode::kDeltaLz;
  Cluster cluster(std::move(opts));
  cluster.registry().register_vm("ring", ring_program(40, 100000));
  cluster.submit(ring_job("hetero", 4));
  cluster.run_for(milliseconds(130));
  cluster.crash_node(0);  // the little-endian 32-bit node dies
  ASSERT_TRUE(cluster.run_until_done("hetero", seconds(240.0)));
  EXPECT_TRUE(
      output_contains(cluster.output("hetero"), std::to_string(expected_token(4, 40))));
}

}  // namespace
}  // namespace starfish::core
