#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "ckpt/image.hpp"
#include "ckpt/incremental.hpp"
#include "ckpt/recovery.hpp"
#include "util/rng.hpp"
#include "ckpt/store.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "vm/bytecode.hpp"
#include "vm/interp.hpp"

namespace starfish::ckpt {
namespace {

using sim::Machine;
using sim::microseconds;
using sim::milliseconds;
using sim::seconds;
using vm::Value;

/// Builds a VM state with varied content to exercise every codec branch.
vm::VmState sample_state() {
  vm::VmState s;
  s.globals = {Value::integer(42), Value::real(3.25), Value::boolean(true), Value::unit(),
               Value::reference(1)};
  s.stack = {Value::integer(-7), Value::reference(0)};
  vm::Frame f;
  f.function = 2;
  f.pc = 17;
  f.locals = {Value::integer(1000000), Value::real(-0.5)};
  s.frames.push_back(f);
  vm::HeapObject arr;
  arr.kind = vm::HeapObject::Kind::kArray;
  arr.fields = {Value::integer(1), Value::integer(2), Value::integer(3)};
  s.heap.push_back(arr);
  vm::HeapObject bytes;
  bytes.kind = vm::HeapObject::Kind::kBytes;
  bytes.bytes = util::Bytes(64, std::byte{0xab});
  s.heap.push_back(bytes);
  s.steps_executed = 123456;
  return s;
}

// ------------------------------------------------------------- images ----

TEST(PortableImage, RoundtripSameMachine) {
  const Machine& m = sim::default_machine();
  auto img = portable_encode(m, sample_state());
  EXPECT_EQ(img.kind, ImageKind::kPortable);
  auto back = portable_decode(img, m);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back.value(), sample_state());
}

TEST(PortableImage, FileSizeIncludesVmBase) {
  auto img = portable_encode(sim::default_machine(), vm::VmState{});
  // An empty program's checkpoint is the 260 KB base of Figure 4 (plus a few
  // header bytes).
  EXPECT_GE(img.file_bytes, kPortableBaseBytes);
  EXPECT_LT(img.file_bytes, kPortableBaseBytes + 256);
}

// Table 2 matrix: checkpoint under each machine type, restore under each.
class Table2Matrix : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Table2Matrix, HeterogeneousRestorePreservesState) {
  auto machines = sim::table2_machines();
  const Machine& saver = machines[static_cast<size_t>(std::get<0>(GetParam()))];
  const Machine& target = machines[static_cast<size_t>(std::get<1>(GetParam()))];

  vm::VmState state = sample_state();
  auto img = portable_encode(saver, state);
  EXPECT_EQ(img.repr_code, saver.repr_code());
  auto back = portable_decode(img, target);
  ASSERT_TRUE(back.ok()) << saver.label() << " -> " << target.label() << ": "
                         << back.error().to_string();
  EXPECT_EQ(back.value(), state) << saver.label() << " -> " << target.label();
}

INSTANTIATE_TEST_SUITE_P(AllPairs, Table2Matrix,
                         ::testing::Combine(::testing::Range(0, 6), ::testing::Range(0, 6)));

TEST(PortableImage, NarrowingOverflowIsCheckedError) {
  auto machines = sim::table2_machines();
  const Machine& alpha = machines[5];  // 64-bit
  const Machine& i686 = machines[0];   // 32-bit
  vm::VmState s;
  s.globals = {Value::integer(1ll << 40)};  // does not fit 32 bits
  auto img = portable_encode(alpha, s);
  auto back = portable_decode(img, i686);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.error().code, "narrow");
  // The same value restores fine onto another 64-bit machine.
  auto ok = portable_decode(img, alpha);
  EXPECT_TRUE(ok.ok());
}

TEST(PortableImage, WideningRestoreIsExact) {
  auto machines = sim::table2_machines();
  vm::VmState s;
  s.globals = {Value::integer(INT32_MIN), Value::integer(INT32_MAX)};
  auto img = portable_encode(machines[1], s);  // big-endian 32-bit Sun
  auto back = portable_decode(img, machines[5]);  // little-endian 64-bit Alpha
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().globals[0], Value::integer(INT32_MIN));
  EXPECT_EQ(back.value().globals[1], Value::integer(INT32_MAX));
}

TEST(PortableImage, CorruptPayloadFailsGracefully) {
  auto img = portable_encode(sim::default_machine(), sample_state());
  img.payload.resize(img.payload.size() / 2);  // truncate
  EXPECT_FALSE(portable_decode(img, sim::default_machine()).ok());
  img.payload.clear();
  EXPECT_FALSE(portable_decode(img, sim::default_machine()).ok());
}

TEST(NativeImage, RoundtripSameRepresentation) {
  const Machine& m = sim::default_machine();
  util::Bytes memory(1000, std::byte{0x3c});
  auto img = native_encode(m, util::as_bytes_view(memory));
  EXPECT_EQ(img.file_bytes, kNativeBaseBytes + 1000);
  auto back = native_decode(img, m);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), memory);
}

TEST(NativeImage, CrossRepresentationRefused) {
  auto machines = sim::table2_machines();
  util::Bytes memory(100, std::byte{1});
  auto img = native_encode(machines[0], util::as_bytes_view(memory));  // i686 Linux
  // Same representation, different OS label: allowed (repr is what matters).
  EXPECT_TRUE(native_decode(img, machines[4]).ok());  // WinNT P-II, same repr
  // Big-endian or 64-bit targets: refused.
  EXPECT_FALSE(native_decode(img, machines[1]).ok());
  auto err = native_decode(img, machines[5]);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, "repr-mismatch");
}

TEST(Images, VmProgramSurvivesCrossMachineRestore) {
  // End-to-end: run half a program on a big-endian 32-bit machine,
  // checkpoint, restore on a little-endian 64-bit machine, finish there.
  const std::string src = R"(
func main 0 2
  push_int 0
  store_local 0
  push_int 1
  store_local 1
loop:
  load_local 1
  push_int 50
  le
  jmp_if_false done
  load_local 0
  load_local 1
  add
  store_local 0
  load_local 1
  push_int 1
  add
  store_local 1
  jmp loop
done:
  load_local 0
  halt
)";
  auto prog = vm::assemble(src);
  ASSERT_TRUE(prog.ok());
  auto machines = sim::table2_machines();
  const Machine& sun = machines[1];
  const Machine& alpha = machines[5];

  vm::Interpreter first(prog.value(), sun);
  first.start();
  (void)first.run(120);
  auto img = portable_encode(sun, first.state());

  auto restored = portable_decode(img, alpha);
  ASSERT_TRUE(restored.ok());
  vm::Interpreter second(prog.value(), alpha);
  second.set_state(std::move(restored).take());
  auto r = second.run();
  ASSERT_EQ(r.status, vm::RunStatus::kHalted);
  EXPECT_EQ(second.mutable_state().stack.back(), Value::integer(1275));  // sum 1..50
}

// -------------------------------------------------------------- store ----

struct StoreFixture {
  sim::Engine eng;
  net::Network net{eng};
  CheckpointStore store{eng};
  StoreFixture() {
    net.add_host("node0");
    net.add_host("node1");
  }
};

TEST(Store, PutChargesDiskTimeMatchingFigure3Anchor) {
  StoreFixture f;
  sim::Time done = -1;
  f.eng.spawn("writer", [&] {
    // Empty-program native checkpoint: 632 KB file.
    auto img = native_encode(sim::default_machine(), {});
    f.store.put(*f.net.host(0), CkptKey{"app", 0, 1}, std::move(img));
    done = f.eng.now();
  });
  f.eng.run();
  // Paper: 0.104061 s for the 632 KB single-node native checkpoint.
  EXPECT_NEAR(sim::to_seconds(done), 0.104, 0.01);
}

TEST(Store, PortablePutMatchesFigure4Anchor) {
  StoreFixture f;
  sim::Time done = -1;
  f.eng.spawn("writer", [&] {
    auto img = portable_encode(sim::default_machine(), vm::VmState{});
    f.store.put(*f.net.host(0), CkptKey{"app", 0, 1}, std::move(img));
    done = f.eng.now();
  });
  f.eng.run();
  // Paper: 0.0077 s for the 260 KB single-node VM checkpoint.
  EXPECT_NEAR(sim::to_seconds(done), 0.0077, 0.002);
}

TEST(Store, GetReturnsWhatWasPut) {
  StoreFixture f;
  bool checked = false;
  f.eng.spawn("rt", [&] {
    auto img = portable_encode(sim::default_machine(), sample_state());
    f.store.put(*f.net.host(0), CkptKey{"app", 2, 5}, img);
    // Read back from a *different* node: shared-store semantics.
    auto got = f.store.get(*f.net.host(1), CkptKey{"app", 2, 5});
    ASSERT_TRUE(got.has_value());
    auto state = portable_decode(*got, sim::default_machine());
    ASSERT_TRUE(state.ok());
    EXPECT_EQ(state.value(), sample_state());
    checked = true;
  });
  f.eng.run();
  EXPECT_TRUE(checked);
}

TEST(Store, MissingKeyIsEmpty) {
  StoreFixture f;
  bool checked = false;
  f.eng.spawn("rt", [&] {
    EXPECT_FALSE(f.store.get(*f.net.host(0), CkptKey{"nope", 0, 0}).has_value());
    checked = true;
  });
  f.eng.run();
  EXPECT_TRUE(checked);
}

TEST(Store, CommitIsMonotone) {
  StoreFixture f;
  EXPECT_FALSE(f.store.latest_committed("app").has_value());
  f.store.commit("app", 3);
  f.store.commit("app", 1);  // stale commit ignored
  EXPECT_EQ(f.store.latest_committed("app").value(), 3u);
  f.store.commit("app", 7);
  EXPECT_EQ(f.store.latest_committed("app").value(), 7u);
}

TEST(Store, LatestStoredPerRank) {
  StoreFixture f;
  f.eng.spawn("rt", [&] {
    auto img = [&] { return portable_encode(sim::default_machine(), vm::VmState{}); };
    f.store.put(*f.net.host(0), CkptKey{"app", 0, 1}, img());
    f.store.put(*f.net.host(0), CkptKey{"app", 0, 4}, img());
    f.store.put(*f.net.host(0), CkptKey{"app", 1, 2}, img());
  });
  f.eng.run();
  EXPECT_EQ(f.store.latest_stored("app", 0).value(), 4u);
  EXPECT_EQ(f.store.latest_stored("app", 1).value(), 2u);
  EXPECT_FALSE(f.store.latest_stored("app", 9).has_value());
}

TEST(Store, GcDropsOldEpochs) {
  StoreFixture f;
  f.eng.spawn("rt", [&] {
    auto img = [&] { return portable_encode(sim::default_machine(), vm::VmState{}); };
    for (uint64_t e = 1; e <= 4; ++e) {
      f.store.put(*f.net.host(0), CkptKey{"app", 0, e}, img());
      f.store.put(*f.net.host(0), CkptKey{"other", 0, e}, img());
    }
  });
  f.eng.run();
  EXPECT_EQ(f.store.gc("app", 3), 2u);
  EXPECT_FALSE(f.store.contains(CkptKey{"app", 0, 2}));
  EXPECT_TRUE(f.store.contains(CkptKey{"app", 0, 3}));
  EXPECT_TRUE(f.store.contains(CkptKey{"other", 0, 1}));  // other app untouched
}

// -------------------------------------------------------- incremental ----

TEST(Incremental, IdenticalStateProducesEmptyDelta) {
  util::Bytes state(3 * kPageBytes + 100, std::byte{7});
  uint64_t changed = 99;
  auto delta = incremental_encode(state, state, &changed);
  EXPECT_EQ(changed, 0u);
  EXPECT_LT(delta.size(), 64u);  // header only
  auto back = incremental_apply(state, delta);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), state);
}

TEST(Incremental, SinglePageChangeEncodesOnePage) {
  util::Bytes prev(10 * kPageBytes, std::byte{1});
  util::Bytes cur = prev;
  cur[5 * kPageBytes + 17] = std::byte{99};
  uint64_t changed = 0;
  auto delta = incremental_encode(prev, cur, &changed);
  EXPECT_EQ(changed, 1u);
  EXPECT_LT(delta.size(), kPageBytes + 64);
  auto back = incremental_apply(prev, delta);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), cur);
}

TEST(Incremental, StateGrowthCoveredByDelta) {
  util::Bytes prev(2 * kPageBytes, std::byte{3});
  util::Bytes cur(5 * kPageBytes + 123, std::byte{3});
  cur.back() = std::byte{42};
  auto delta = incremental_encode(prev, cur, nullptr);
  auto back = incremental_apply(prev, delta);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), cur);
}

TEST(Incremental, StateShrinkTruncates) {
  util::Bytes prev(5 * kPageBytes, std::byte{3});
  util::Bytes cur(2 * kPageBytes - 7, std::byte{3});
  auto delta = incremental_encode(prev, cur, nullptr);
  auto back = incremental_apply(prev, delta);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), cur);
}

TEST(Incremental, UnalignedTailPageHandled) {
  util::Bytes prev(kPageBytes + 5, std::byte{1});
  util::Bytes cur = prev;
  cur[kPageBytes + 2] = std::byte{8};  // in the partial tail page
  uint64_t changed = 0;
  auto delta = incremental_encode(prev, cur, &changed);
  EXPECT_EQ(changed, 1u);
  auto back = incremental_apply(prev, delta);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), cur);
}

TEST(Incremental, ChainOfDeltasResolves) {
  util::Rng rng(5);
  util::Bytes state(8 * kPageBytes, std::byte{0});
  util::Bytes base = state;
  std::vector<util::Bytes> deltas;
  std::vector<util::Bytes> truth;
  for (int step = 0; step < 5; ++step) {
    util::Bytes next = state;
    for (int k = 0; k < 3; ++k) {
      next[rng.below(next.size())] = static_cast<std::byte>(rng.below(256));
    }
    deltas.push_back(incremental_encode(state, next, nullptr));
    truth.push_back(next);
    state = next;
  }
  util::Bytes resolved = base;
  for (size_t i = 0; i < deltas.size(); ++i) {
    auto r = incremental_apply(resolved, deltas[i]);
    ASSERT_TRUE(r.ok());
    resolved = std::move(r).take();
    EXPECT_EQ(resolved, truth[i]);
  }
}

TEST(Incremental, CorruptDeltaFailsGracefully) {
  util::Bytes prev(kPageBytes, std::byte{1});
  util::Bytes cur(kPageBytes, std::byte{2});
  auto delta = incremental_encode(prev, cur, nullptr);
  delta.resize(delta.size() / 2);
  EXPECT_FALSE(incremental_apply(prev, delta).ok());
}

// Hostile-delta hardening: a corrupt chain must surface as a decode error
// before it can drive a huge allocation or an out-of-bounds write.

TEST(Incremental, ApplyRejectsOversizedTotalBeforeAllocating) {
  util::Bytes delta;
  util::Writer w(delta);
  w.u64(kMaxIncrementalStateBytes + 1);
  w.u32(0);
  EXPECT_FALSE(incremental_apply({}, delta).ok());
  // A caller-supplied tighter bound also rejects.
  util::Bytes small;
  util::Writer w2(small);
  w2.u64(4 * kPageBytes);
  w2.u32(0);
  EXPECT_FALSE(incremental_apply({}, small, 2 * kPageBytes).ok());
  EXPECT_TRUE(incremental_apply({}, small, 4 * kPageBytes).ok());
}

TEST(Incremental, ApplyRejectsMorePagesThanStateHolds) {
  util::Bytes delta;
  util::Writer w(delta);
  w.u64(kPageBytes);  // one page of state...
  w.u32(3);           // ...but three pages announced
  EXPECT_FALSE(incremental_apply({}, delta).ok());
}

TEST(Incremental, ApplyRejectsOutOfRangePageIndex) {
  util::Bytes delta;
  util::Writer w(delta);
  w.u64(kPageBytes);
  w.u32(1);
  w.u32(5);  // page 5 of a 1-page state
  w.bytes(util::as_bytes_view(util::Bytes(kPageBytes, std::byte{9})));
  EXPECT_FALSE(incremental_apply({}, delta).ok());
}

TEST(Incremental, ApplyRejectsDuplicatePage) {
  const util::Bytes page(kPageBytes, std::byte{9});
  util::Bytes delta;
  util::Writer w(delta);
  w.u64(2 * kPageBytes);
  w.u32(2);
  w.u32(0);
  w.bytes(util::as_bytes_view(page));
  w.u32(0);  // page 0 again
  w.bytes(util::as_bytes_view(page));
  EXPECT_FALSE(incremental_apply({}, delta).ok());
}

TEST(Incremental, ApplyRejectsWrongPageLength) {
  util::Bytes delta;
  util::Writer w(delta);
  w.u64(2 * kPageBytes);
  w.u32(1);
  w.u32(0);
  w.bytes(util::as_bytes_view(util::Bytes(7, std::byte{9})));  // not a full page
  EXPECT_FALSE(incremental_apply({}, delta).ok());
}

// ----------------------------------------------------------- recovery ----

TEST(Recovery, NoMessagesNoRollback) {
  std::map<uint32_t, uint32_t> latest = {{0, 3}, {1, 2}};
  auto line = compute_recovery_line({}, latest);
  EXPECT_EQ(line, latest);
  EXPECT_EQ(rollback_distance(line, latest), 0u);
}

TEST(Recovery, OrphanForcesReceiverBack) {
  // p1's checkpoint 2 depends on a message p0 sent in interval 2, but p0's
  // newest checkpoint is 2 (send in interval 2 happens after checkpoint 2 is
  // taken? no: interval 2 follows checkpoint 2) — dep (0,2) with line(0)=2
  // means orphan, p1 must fall back to checkpoint 1.
  std::vector<CheckpointMeta> metas = {
      {1, 2, {{0, 2}}, {}},
      {1, 1, {}, {}},
  };
  std::map<uint32_t, uint32_t> latest = {{0, 2}, {1, 2}};
  auto line = compute_recovery_line(metas, latest);
  EXPECT_EQ(line[0], 2u);
  EXPECT_EQ(line[1], 1u);
  EXPECT_EQ(rollback_distance(line, latest), 1u);
}

TEST(Recovery, SatisfiedDependencyNeedsNoRollback) {
  // Message sent in p0's interval 1 and p0 restores at checkpoint 2 (> 1):
  // the send is retained, no orphan.
  std::vector<CheckpointMeta> metas = {{1, 2, {{0, 1}}, {}}};
  std::map<uint32_t, uint32_t> latest = {{0, 2}, {1, 2}};
  auto line = compute_recovery_line(metas, latest);
  EXPECT_EQ(line[0], 2u);
  EXPECT_EQ(line[1], 2u);
}

TEST(Recovery, CascadeAcrossThreeProcesses) {
  // p2 depends on p1's interval 2; rolling p1 to 2 is fine, but p1's
  // checkpoint 2 depends on p0's interval 1 while p0 only saved checkpoint 1
  // => p1 falls to 1 => p2's dep (1,2) becomes orphan => p2 falls too.
  std::vector<CheckpointMeta> metas = {
      {2, 3, {{1, 2}}, {}}, {2, 2, {{1, 1}}, {}}, {2, 1, {}, {}},
      {1, 2, {{0, 1}}, {}}, {1, 1, {{0, 0}}, {}},
  };
  std::map<uint32_t, uint32_t> latest = {{0, 1}, {1, 2}, {2, 3}};
  auto line = compute_recovery_line(metas, latest);
  EXPECT_EQ(line[0], 1u);
  EXPECT_EQ(line[1], 1u);  // dep (0,1) >= line(0)=1 -> orphan -> fell to 1
  EXPECT_EQ(line[2], 1u);  // cascade: deps (1,2) then (1,1) orphaned
  EXPECT_EQ(rollback_distance(line, latest), 3u);
}

TEST(Recovery, DominoEffectToInitialState) {
  // Tight ping-pong: every checkpoint of each process depends on the other's
  // immediately preceding interval; losing the last checkpoint unravels all
  // the way to the initial state.
  std::vector<CheckpointMeta> metas;
  for (uint32_t c = 1; c <= 4; ++c) {
    metas.push_back({0, c, {{1, c - 1}, {1, c}}, {}});
    metas.push_back({1, c, {{0, c - 1}, {0, c}}, {}});
  }
  // Process 1 failed and its checkpoint 4 is unusable: latest saved is 3.
  std::map<uint32_t, uint32_t> latest = {{0, 4}, {1, 3}};
  auto line = compute_recovery_line(metas, latest);
  EXPECT_EQ(line[0], 0u);
  EXPECT_EQ(line[1], 0u);
}

TEST(Recovery, LostMessageRollsSenderBack) {
  // Distilled from the chaos sweep: a ring where rank 2 died before its
  // first checkpoint. Rank 1's checkpoints remember sending the round-1
  // token to rank 2, but rank 2 restarts from its initial state — the token
  // is lost, so rank 1 (and transitively rank 0) must roll back past the
  // send or the restored ring deadlocks. The orphan rule alone never fires
  // here (rank 2 stored no receives at all).
  std::vector<CheckpointMeta> metas = {
      {0, 1, {}, {{1, 1}}},       // rank 0 sent the token to rank 1...
      {1, 1, {{0, 0}}, {{2, 1}}}, // ...rank 1 consumed it and relayed to 2
  };
  std::map<uint32_t, uint32_t> latest = {{0, 1}, {1, 1}, {2, 0}, {3, 0}};
  auto line = compute_recovery_line(metas, latest);
  EXPECT_EQ(line[1], 0u);  // lost send to rank 2 undone
  EXPECT_EQ(line[0], 0u);  // cascades: its send to rank 1 is now lost too
  EXPECT_EQ(line[2], 0u);
}

TEST(Recovery, SatisfiedSendCountsNeedNoRollback) {
  // Every message rank 0's checkpoint remembers sending is matched by a
  // consumed receive in rank 1's checkpoint: nothing is lost, the latest
  // checkpoints stand.
  std::vector<CheckpointMeta> metas = {
      {0, 1, {}, {{1, 2}}},
      {1, 1, {{0, 0}, {0, 0}}, {}},
  };
  std::map<uint32_t, uint32_t> latest = {{0, 1}, {1, 1}};
  auto line = compute_recovery_line(metas, latest);
  EXPECT_EQ(line[0], 1u);
  EXPECT_EQ(line[1], 1u);
}

TEST(Recovery, LostMessageResolvedByEarlierSenderCheckpoint) {
  // The sender's newest checkpoint over-sends but its previous one does
  // not: the line backs the sender up exactly one step, not to zero.
  std::vector<CheckpointMeta> metas = {
      {0, 2, {}, {{1, 2}}},
      {0, 1, {}, {{1, 1}}},
      {1, 1, {{0, 0}}, {}},
  };
  std::map<uint32_t, uint32_t> latest = {{0, 2}, {1, 1}};
  auto line = compute_recovery_line(metas, latest);
  EXPECT_EQ(line[0], 1u);
  EXPECT_EQ(line[1], 1u);
}

TEST(Recovery, TrackerPiggybackAndCut) {
  DependencyTracker t(3);
  EXPECT_EQ(t.on_send(), (IntervalId{3, 0}));
  t.on_recv({1, 0});
  auto [idx1, deps1] = t.cut_checkpoint();
  EXPECT_EQ(idx1, 1u);
  ASSERT_EQ(deps1.size(), 1u);
  EXPECT_EQ(deps1[0], (IntervalId{1, 0}));
  EXPECT_EQ(t.on_send(), (IntervalId{3, 1}));
  t.on_recv({2, 5});
  auto [idx2, deps2] = t.cut_checkpoint();
  EXPECT_EQ(idx2, 2u);
  EXPECT_EQ(deps2.size(), 2u);  // cumulative
}

TEST(Recovery, TrackerEncodeDecodeRoundtrip) {
  DependencyTracker t(7);
  t.on_recv({1, 2});
  t.on_recv({3, 4});
  (void)t.cut_checkpoint();
  auto decoded = DependencyTracker::decode(t.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().rank(), 7u);
  EXPECT_EQ(decoded.value().current_interval(), 1u);
  EXPECT_EQ(decoded.value().encode(), t.encode());
}

// Regression: decode used to trust the announced dependency count and fill
// truncated reads with value_or(0), silently fabricating an empty (or
// zeroed) dependency set from a corrupt buffer. A dependency set invented
// this way would unconstrain the recovery line. Now every truncation
// surfaces as an error.
TEST(Recovery, TrackerDecodeRejectsTruncatedBuffer) {
  DependencyTracker t(3);
  t.on_recv({1, 5});
  t.on_recv({2, 6});
  (void)t.cut_checkpoint();
  const util::Bytes full = t.encode();

  // Every strict prefix must fail, not decode to a tracker missing deps.
  for (size_t len = 0; len < full.size(); ++len) {
    util::Bytes cut(full.begin(), full.begin() + static_cast<long>(len));
    auto r = DependencyTracker::decode(cut);
    EXPECT_FALSE(r.ok()) << "prefix of " << len << " bytes decoded";
  }
  EXPECT_TRUE(DependencyTracker::decode(full).ok());
}

// Regression: an over-announced count (header claims more entries than the
// buffer holds) must be rejected up front rather than half-read.
TEST(Recovery, TrackerDecodeRejectsOverAnnouncedCount) {
  util::Bytes buf;
  util::Writer w(buf);
  w.u32(1);           // rank
  w.u32(1);           // interval
  w.u32(0xffffffff);  // announced entries: nowhere near present
  w.u32(9);           // one lonely half-entry
  auto r = DependencyTracker::decode(buf);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "decode");
}

// Trailing garbage after a well-formed tracker is corruption too.
TEST(Recovery, TrackerDecodeRejectsTrailingBytes) {
  DependencyTracker t(1);
  (void)t.cut_checkpoint();
  util::Bytes buf = t.encode();
  buf.push_back(std::byte{0xab});
  EXPECT_FALSE(DependencyTracker::decode(buf).ok());
}

TEST(Recovery, TrackerSendCountsRoundtrip) {
  DependencyTracker t(2);
  t.note_send(0);
  t.note_send(1);
  t.note_send(1);
  t.on_recv({0, 0});
  (void)t.cut_checkpoint();
  auto decoded = DependencyTracker::decode(t.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().rank(), 2u);
  EXPECT_EQ(decoded.value().sent(), (std::map<uint32_t, uint32_t>{{0, 1}, {1, 2}}));
  EXPECT_EQ(decoded.value().received(), t.received());
  EXPECT_EQ(decoded.value().encode(), t.encode());
}

// With sends recorded the layout flag commits the blob to carrying the
// send-count section: truncating it anywhere — including cleanly dropping
// the whole section — must fail instead of decoding to "sent nothing"
// (which would erase lost-message constraints and under-roll the line).
TEST(Recovery, TrackerDecodeRejectsTruncatedSendSection) {
  DependencyTracker t(2);
  t.note_send(0);
  t.on_recv({1, 3});
  (void)t.cut_checkpoint();
  const util::Bytes full = t.encode();
  for (size_t len = 0; len < full.size(); ++len) {
    util::Bytes cut(full.begin(), full.begin() + static_cast<long>(len));
    EXPECT_FALSE(DependencyTracker::decode(cut).ok()) << "prefix of " << len << " bytes decoded";
  }
  EXPECT_TRUE(DependencyTracker::decode(full).ok());
}

// A blob without the layout flag (e.g. written before send tracking, or by
// a tracker that never sent) still decodes, with an empty send ledger.
TEST(Recovery, TrackerDecodeAcceptsLegacyLayoutWithoutSends) {
  util::Bytes buf;
  util::Writer w(buf);
  w.u32(4);  // rank, flag bit clear
  w.u32(2);  // interval
  w.u32(1);  // one dependency
  w.u32(0);
  w.u32(1);
  auto r = DependencyTracker::decode(buf);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().sent().empty());
  ASSERT_EQ(r.value().received().size(), 1u);
}

// The send-count section's announced length is validated like the
// dependency count: an over-announcing header is rejected up front.
TEST(Recovery, TrackerDecodeRejectsOverAnnouncedSendCount) {
  DependencyTracker t(1);
  t.note_send(0);
  util::Bytes buf = t.encode();
  // Patch the send-section count (last 12 bytes: count, peer, count).
  buf[buf.size() - 12] = std::byte{0xff};
  buf[buf.size() - 11] = std::byte{0xff};
  auto r = DependencyTracker::decode(buf);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "decode");
}

// ---- recovery-line property test -----------------------------------------
//
// Consistent cuts are closed under componentwise max: if cuts A and B are
// both consistent, so is max(A, B) (every dependency satisfied in A or B is
// still satisfied when every component only grows). The set of consistent
// cuts therefore has a unique maximum — and compute_recovery_line must find
// exactly it. On small random instances we can brute-force that maximum by
// enumerating every cut and compare.

bool cut_consistent(const std::map<std::pair<uint32_t, uint32_t>, std::vector<IntervalId>>& deps,
                    const std::map<uint32_t, uint32_t>& cut) {
  for (const auto& [rank, index] : cut) {
    auto it = deps.find({rank, index});
    if (it == deps.end()) continue;  // index 0 or no recorded deps
    for (const auto& d : it->second) {
      auto peer = cut.find(d.rank);
      if (peer == cut.end()) continue;
      if (d.interval >= peer->second) return false;  // orphan receive
    }
  }
  return true;
}

TEST(Recovery, LineIsConsistentAndMaximalOnRandomGraphs) {
  util::Rng rng(0x11e7);  // fixed seed: deterministic corpus
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t procs = 2 + static_cast<uint32_t>(rng.below(3));  // 2..4
    std::map<uint32_t, uint32_t> latest;
    std::vector<CheckpointMeta> metas;
    std::map<std::pair<uint32_t, uint32_t>, std::vector<IntervalId>> deps;
    for (uint32_t p = 0; p < procs; ++p) {
      latest[p] = static_cast<uint32_t>(rng.below(4));  // 0..3 checkpoints
      for (uint32_t c = 1; c <= latest[p]; ++c) {
        CheckpointMeta m;
        m.rank = p;
        m.index = c;
        const uint32_t ndeps = static_cast<uint32_t>(rng.below(4));
        for (uint32_t d = 0; d < ndeps; ++d) {
          uint32_t q = static_cast<uint32_t>(rng.below(procs));
          if (q == p) continue;
          m.depends_on.push_back(
              IntervalId{q, static_cast<uint32_t>(rng.below(4))});
        }
        // Dependency sets are cumulative in the tracker: checkpoint c sees
        // everything c-1 saw.
        auto prev = deps.find({p, c - 1});
        if (prev != deps.end()) {
          m.depends_on.insert(m.depends_on.end(), prev->second.begin(), prev->second.end());
        }
        deps[{p, c}] = m.depends_on;
        metas.push_back(std::move(m));
      }
    }

    const auto line = compute_recovery_line(metas, latest);

    // Brute-force the componentwise-max (join) of all consistent cuts.
    std::map<uint32_t, uint32_t> best;  // join accumulator
    for (uint32_t p = 0; p < procs; ++p) best[p] = 0;
    std::map<uint32_t, uint32_t> cut = best;
    for (;;) {
      if (cut_consistent(deps, cut)) {
        for (auto& [p, c] : best) c = std::max(c, cut[p]);
      }
      // Odometer increment over 0..latest[p] per rank.
      uint32_t p = 0;
      for (; p < procs; ++p) {
        if (cut[p] < latest[p]) {
          ++cut[p];
          for (uint32_t q = 0; q < p; ++q) cut[q] = 0;
          break;
        }
      }
      if (p == procs) break;
    }

    ASSERT_TRUE(cut_consistent(deps, line)) << "trial " << trial;
    EXPECT_EQ(line, best) << "trial " << trial;  // the unique maximum cut
  }
}

// Full consistency (orphans AND lost messages) against a set of metas, with
// the same lookup conventions as compute_recovery_line: index 0 and missing
// metas carry no dependencies and no sends.
bool cut_fully_consistent(const std::vector<CheckpointMeta>& metas,
                          const std::map<uint32_t, uint32_t>& cut) {
  std::map<std::pair<uint32_t, uint32_t>, const CheckpointMeta*> by_key;
  for (const auto& m : metas) by_key[{m.rank, m.index}] = &m;
  auto meta_of = [&](uint32_t rank, uint32_t index) -> const CheckpointMeta* {
    if (index == 0) return nullptr;
    auto it = by_key.find({rank, index});
    return it == by_key.end() ? nullptr : it->second;
  };
  for (const auto& [rank, index] : cut) {
    const auto* m = meta_of(rank, index);
    if (m == nullptr) continue;
    for (const auto& d : m->depends_on) {
      auto peer = cut.find(d.rank);
      if (peer != cut.end() && d.interval >= peer->second) return false;  // orphan
    }
    for (const auto& [peer, sent_count] : m->sent) {
      auto it = cut.find(peer);
      if (it == cut.end()) continue;
      uint32_t consumed = 0;
      const auto* pm = meta_of(peer, it->second);
      if (pm != nullptr) {
        for (const auto& d : pm->depends_on) {
          if (d.rank == rank) ++consumed;
        }
      }
      if (sent_count > consumed) return false;  // lost message
    }
  }
  return true;
}

// Simulated message histories: random processes exchange real messages
// (each send eventually delivered or still in flight) and checkpoint at
// random moments, recording exactly what DependencyTracker records. The
// computed line must match the brute-forced maximum fully-consistent cut —
// and restoring it must lose no delivered-but-unsent message.
TEST(Recovery, LineIsMaximalOnSimulatedMessageHistories) {
  util::Rng rng(0xd031);  // fixed seed: deterministic corpus
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t procs = 2 + static_cast<uint32_t>(rng.below(3));  // 2..4
    std::vector<DependencyTracker> trackers;
    for (uint32_t p = 0; p < procs; ++p) trackers.emplace_back(p);
    struct InFlight {
      uint32_t dst;
      IntervalId tag;
      uint32_t deliver_at;  // step index
    };
    std::vector<InFlight> flying;
    std::vector<CheckpointMeta> metas;
    std::map<uint32_t, uint32_t> latest;
    for (uint32_t p = 0; p < procs; ++p) latest[p] = 0;

    const uint32_t steps = 20 + static_cast<uint32_t>(rng.below(20));
    for (uint32_t step = 0; step < steps; ++step) {
      // Deliveries scheduled for this step.
      for (auto it = flying.begin(); it != flying.end();) {
        if (it->deliver_at == step) {
          trackers[it->dst].on_recv(it->tag);
          it = flying.erase(it);
        } else {
          ++it;
        }
      }
      const uint32_t p = static_cast<uint32_t>(rng.below(procs));
      if (rng.chance(0.25)) {
        // p takes an independent checkpoint.
        auto& t = trackers[p];
        const auto [index, deps] = t.cut_checkpoint();
        metas.push_back({p, index, deps, t.sent()});
        latest[p] = index;
      } else {
        // p sends one message; it lands 1..6 steps later (possibly never:
        // past the horizon = in flight at every cut).
        uint32_t q;
        do {
          q = static_cast<uint32_t>(rng.below(procs));
        } while (q == p);
        auto& t = trackers[p];
        flying.push_back({q, t.on_send(), step + 1 + static_cast<uint32_t>(rng.below(6))});
        t.note_send(q);
      }
    }

    const auto line = compute_recovery_line(metas, latest);

    // Brute-force the join of all fully-consistent cuts.
    std::map<uint32_t, uint32_t> best;
    for (uint32_t p = 0; p < procs; ++p) best[p] = 0;
    std::map<uint32_t, uint32_t> cut = best;
    for (;;) {
      if (cut_fully_consistent(metas, cut)) {
        for (auto& [p, c] : best) c = std::max(c, cut[p]);
      }
      uint32_t p = 0;
      for (; p < procs; ++p) {
        if (cut[p] < latest[p]) {
          ++cut[p];
          for (uint32_t q = 0; q < p; ++q) cut[q] = 0;
          break;
        }
      }
      if (p == procs) break;
    }

    ASSERT_TRUE(cut_fully_consistent(metas, line)) << "trial " << trial;
    EXPECT_EQ(line, best) << "trial " << trial;  // the unique maximum cut
  }
}

}  // namespace
}  // namespace starfish::ckpt
