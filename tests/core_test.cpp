#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/bus.hpp"
#include "core/cluster.hpp"

namespace starfish::core {
namespace {

using daemon::AppPhase;
using daemon::CkptLevel;
using daemon::CrProtocol;
using daemon::FtPolicy;
using daemon::JobSpec;
using sim::milliseconds;
using sim::seconds;

// VM ring app: a token circulates R rounds; every rank adds its rank number
// on receipt; rank 0 prints the final token (= R * sum of ranks) and all
// ranks halt. Exercises p2p + restartable VM state.
std::string ring_program(int rounds, int spin_per_hop) {
  return R"(
# globals: g0 = round counter, g1 = token
func main 0 2
  syscall rank
  store_local 0          # my rank
  syscall world_size
  store_local 1          # n
  push_int 0
  store_global 0         # round = 0
  push_int 0
  store_global 1         # token = 0
loop:
  load_global 0
  push_int )" + std::to_string(rounds) + R"(
  ge
  jmp_if_false body
  jmp done
body:
  push_int )" + std::to_string(spin_per_hop) + R"(
  syscall spin
  load_local 0
  push_int 0
  eq
  jmp_if_false relay
  # rank 0: send token, then wait for it to come back
  push_int 1
  load_local 1
  push_int 1
  eq
  jmp_if_false send0
  pop                     # n == 1: nobody to send to; just count rounds
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
send0:
  load_global 1
  syscall send_to
  push_int -1
  syscall recv_from
  store_global 1
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
relay:
  # other ranks: receive, add my rank, forward to (rank+1) mod n
  push_int -1
  syscall recv_from
  load_local 0
  add
  store_global 1
  load_local 0
  push_int 1
  add
  load_local 1
  mod
  load_global 1
  syscall send_to
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
done:
  load_local 0
  push_int 0
  eq
  jmp_if_false finish
  load_global 1
  syscall print
finish:
  halt
)";
}

JobSpec ring_job(const std::string& name, uint32_t nprocs, int rounds = 40,
                 int spin = 20000) {
  JobSpec job;
  job.name = name;
  job.binary = "ring";
  job.nprocs = nprocs;
  (void)rounds;
  (void)spin;
  return job;
}

struct Fixture {
  Cluster cluster;
  explicit Fixture(size_t nodes = 4, ClusterOptions opts = {}) : cluster([&] {
    opts.nodes = nodes;
    return opts;
  }()) {
    // ~5 ms of compute per rank per round: the 40-round job runs ~210 ms of
    // virtual time, so periodic checkpoints (50-70 ms) fire several times.
    cluster.registry().register_vm("ring", ring_program(40, 100000));
    cluster.boot();
  }
};

int64_t expected_ring_token(uint32_t n, int rounds) {
  int64_t per_round = 0;
  for (uint32_t r = 1; r < n; ++r) per_round += r;
  return per_round * rounds;
}

bool output_contains(const std::vector<std::string>& lines, const std::string& needle) {
  return std::any_of(lines.begin(), lines.end(),
                     [&](const std::string& l) { return l.find(needle) != std::string::npos; });
}

// ----------------------------------------------------------- basic run ----

TEST(ClusterRun, VmRingCompletesWithCorrectResult) {
  Fixture f(4);
  f.cluster.submit(ring_job("job1", 4));
  ASSERT_TRUE(f.cluster.run_until_done("job1"));
  auto out = f.cluster.output("job1");
  ASSERT_FALSE(out.empty());
  EXPECT_TRUE(output_contains(out, std::to_string(expected_ring_token(4, 40))));
}

TEST(ClusterRun, SingleProcessJob) {
  Fixture f(2);
  f.cluster.submit(ring_job("solo", 1));
  ASSERT_TRUE(f.cluster.run_until_done("solo"));
}

TEST(ClusterRun, MoreRanksThanNodesColocates) {
  Fixture f(2);
  f.cluster.submit(ring_job("big", 5));
  ASSERT_TRUE(f.cluster.run_until_done("big"));
  EXPECT_TRUE(output_contains(f.cluster.output("big"), std::to_string(expected_ring_token(5, 40))));
}

TEST(ClusterRun, NativeAppWithCollectives) {
  Fixture f(3);
  f.cluster.registry().register_native("sum", [](AppContext& ctx) {
    auto total = ctx.world().allreduce(
        std::vector<int64_t>{static_cast<int64_t>(ctx.rank() + 1)}, mpi::ReduceOp::kSum);
    if (ctx.rank() == 0) ctx.print("total=" + std::to_string(total[0]));
  });
  JobSpec job;
  job.name = "sumjob";
  job.binary = "sum";
  job.nprocs = 3;
  f.cluster.submit(job);
  ASSERT_TRUE(f.cluster.run_until_done("sumjob"));
  EXPECT_TRUE(output_contains(f.cluster.output("sumjob"), "total=6"));
}

TEST(ClusterRun, UnknownBinaryFails) {
  Fixture f(2);
  JobSpec job;
  job.name = "ghost";
  job.binary = "no-such-binary";
  job.nprocs = 2;
  f.cluster.submit(job);
  EXPECT_FALSE(f.cluster.run_until_done("ghost", seconds(10.0)));
  EXPECT_EQ(f.cluster.phase("ghost"), AppPhase::kFailed);
}

TEST(ClusterRun, TwoConcurrentApps) {
  Fixture f(4);
  f.cluster.submit(ring_job("a", 3));
  f.cluster.submit(ring_job("b", 4));
  ASSERT_TRUE(f.cluster.run_until_done("a"));
  ASSERT_TRUE(f.cluster.run_until_done("b"));
  EXPECT_TRUE(output_contains(f.cluster.output("a"), std::to_string(expected_ring_token(3, 40))));
  EXPECT_TRUE(output_contains(f.cluster.output("b"), std::to_string(expected_ring_token(4, 40))));
}

// ------------------------------------------------------- checkpointing ----

TEST(Checkpointing, StopAndSyncCommitsEpochs) {
  Fixture f(4);
  auto job = ring_job("ck", 4);
  job.protocol = CrProtocol::kStopAndSync;
  job.level = CkptLevel::kVm;
  job.ckpt_interval = milliseconds(60);
  f.cluster.submit(job);
  ASSERT_TRUE(f.cluster.run_until_done("ck"));
  auto committed = f.cluster.store().latest_committed("ck");
  ASSERT_TRUE(committed.has_value());
  EXPECT_GE(*committed, 1u);
  EXPECT_TRUE(output_contains(f.cluster.output("ck"), std::to_string(expected_ring_token(4, 40))));
}

TEST(Checkpointing, KillPolicyStopsAppOnCrash) {
  Fixture f(4);
  auto job = ring_job("frail", 4);
  job.policy = FtPolicy::kKill;
  f.cluster.submit(job);
  f.cluster.run_for(milliseconds(30));
  f.cluster.crash_node(2);
  EXPECT_FALSE(f.cluster.run_until_done("frail", seconds(20.0)));
  EXPECT_EQ(f.cluster.phase("frail"), AppPhase::kFailed);
}

TEST(Checkpointing, RestartFromStopAndSyncCheckpointAfterCrash) {
  Fixture f(4);
  auto job = ring_job("phoenix", 4);
  job.policy = FtPolicy::kRestart;
  job.protocol = CrProtocol::kStopAndSync;
  job.level = CkptLevel::kVm;
  job.ckpt_interval = milliseconds(50);
  f.cluster.submit(job);
  f.cluster.run_for(milliseconds(130));  // let a couple of checkpoints commit
  ASSERT_TRUE(f.cluster.store().latest_committed("phoenix").has_value());
  f.cluster.crash_node(3);
  ASSERT_TRUE(f.cluster.run_until_done("phoenix"));
  // The result is exactly right despite the mid-run crash and rollback.
  EXPECT_TRUE(
      output_contains(f.cluster.output("phoenix"), std::to_string(expected_ring_token(4, 40))));
  EXPECT_GE(f.cluster.daemon_at(0).restarts_performed(), 1u);
}

TEST(Checkpointing, RestartWithoutAnyCheckpointRestartsFromScratch) {
  Fixture f(3);
  auto job = ring_job("fresh", 3);
  job.policy = FtPolicy::kRestart;
  job.protocol = CrProtocol::kStopAndSync;
  job.level = CkptLevel::kVm;
  job.ckpt_interval = 0;  // no system checkpoints
  f.cluster.submit(job);
  f.cluster.run_for(milliseconds(40));
  f.cluster.crash_node(2);
  ASSERT_TRUE(f.cluster.run_until_done("fresh"));
  EXPECT_TRUE(
      output_contains(f.cluster.output("fresh"), std::to_string(expected_ring_token(3, 40))));
}

TEST(Checkpointing, ChandyLamportDoesNotBlockTheApplication) {
  Fixture f(4);
  auto job = ring_job("cl", 4);
  job.policy = FtPolicy::kRestart;
  job.protocol = CrProtocol::kChandyLamport;
  job.level = CkptLevel::kVm;
  job.ckpt_interval = milliseconds(60);
  f.cluster.submit(job);
  ASSERT_TRUE(f.cluster.run_until_done("cl"));
  auto committed = f.cluster.store().latest_committed("cl");
  ASSERT_TRUE(committed.has_value());
  EXPECT_GE(*committed, 1u);
  EXPECT_TRUE(output_contains(f.cluster.output("cl"), std::to_string(expected_ring_token(4, 40))));
}

TEST(Checkpointing, ChandyLamportRestartAfterCrash) {
  Fixture f(4);
  auto job = ring_job("clr", 4);
  job.policy = FtPolicy::kRestart;
  job.protocol = CrProtocol::kChandyLamport;
  job.level = CkptLevel::kVm;
  job.ckpt_interval = milliseconds(50);
  f.cluster.submit(job);
  f.cluster.run_for(milliseconds(130));
  f.cluster.crash_node(1);
  ASSERT_TRUE(f.cluster.run_until_done("clr"));
  EXPECT_TRUE(
      output_contains(f.cluster.output("clr"), std::to_string(expected_ring_token(4, 40))));
}

TEST(Checkpointing, UncoordinatedRestartUsesRecoveryLine) {
  Fixture f(4);
  auto job = ring_job("unco", 4);
  job.policy = FtPolicy::kRestart;
  job.protocol = CrProtocol::kUncoordinated;
  job.level = CkptLevel::kVm;
  job.ckpt_interval = milliseconds(70);
  f.cluster.submit(job);
  f.cluster.run_for(milliseconds(250));
  f.cluster.crash_node(2);
  ASSERT_TRUE(f.cluster.run_until_done("unco"));
  EXPECT_TRUE(
      output_contains(f.cluster.output("unco"), std::to_string(expected_ring_token(4, 40))));
}

TEST(Checkpointing, NativeLevelHomogeneousRestart) {
  // Pure-compute native app: state hooks make it restartable.
  Fixture f(3);
  f.cluster.registry().register_native("worker", [](AppContext& ctx) {
    int64_t i = 0;
    ctx.set_state_restore([&](const util::Bytes& b) {
      util::Reader r(util::as_bytes_view(b));
      i = r.i64().value_or(0);
    });
    ctx.set_state_capture([&] {
      util::Bytes b;
      util::Writer w(b);
      w.i64(i);
      return b;
    });
    while (i < 20) {
      ctx.compute(milliseconds(10));
      ++i;
    }
    ctx.print("rank" + std::to_string(ctx.rank()) + " finished at " + std::to_string(i));
  });
  JobSpec job;
  job.name = "nat";
  job.binary = "worker";
  job.nprocs = 3;
  job.policy = FtPolicy::kRestart;
  job.protocol = CrProtocol::kStopAndSync;
  job.level = CkptLevel::kNative;
  job.ckpt_interval = milliseconds(40);
  f.cluster.submit(job);
  f.cluster.run_for(milliseconds(120));
  f.cluster.crash_node(1);
  ASSERT_TRUE(f.cluster.run_until_done("nat"));
  auto out = f.cluster.output("nat");
  int finished = 0;
  for (const auto& line : out) {
    if (line.find("finished at 20") != std::string::npos) ++finished;
  }
  EXPECT_GE(finished, 3);
}

// ------------------------------------------------ dynamicity / notify ----

TEST(Dynamicity, NotifyPolicyRepartitionsWork) {
  // The paper's trivially-parallel pattern: work units are repartitioned
  // over the surviving ranks after a failure (section 3.2.2).
  constexpr int kUnits = 30;
  Fixture f(4);
  f.cluster.registry().register_native("partition", [](AppContext& ctx) {
    constexpr int kResultTag = 1;
    constexpr int kDoneTag = 2;
    if (ctx.rank() == 0) {
      // Collector: gather every unit's result (workers may resend after a
      // view change; dedupe by unit id), then dismiss the workers.
      std::vector<int64_t> results(kUnits, -1);
      int have = 0;
      while (have < kUnits) {
        auto data = ctx.world().recv(mpi::kAnySource, kResultTag);
        util::Reader r(util::as_bytes_view(data));
        const int64_t unit = r.i64().value_or(0);
        const int64_t value = r.i64().value_or(0);
        if (results[static_cast<size_t>(unit)] < 0) {
          results[static_cast<size_t>(unit)] = value;
          ++have;
        }
      }
      int64_t total = 0;
      for (auto v : results) total += v;
      ctx.print("sum=" + std::to_string(total));
      for (uint32_t r = 1; r < ctx.size(); ++r) {
        ctx.world().send(static_cast<int>(r), kDoneTag, {});
      }
      return;
    }
    // Workers: compute the units assigned to me under the current live set;
    // a view change re-partitions (we conservatively resend everything). A
    // worker never exits on its own — failure detection may lag the crash,
    // so it idles until a new view or the collector's DONE arrives.
    std::vector<uint32_t> live;
    for (uint32_t i = 0; i < ctx.size(); ++i) live.push_back(i);
    bool changed = false;
    ctx.set_view_handler([&](const std::vector<uint32_t>& now_live) {
      live = now_live;
      changed = true;
    });
    for (;;) {
      changed = false;
      // Workers = live ranks except the collector.
      std::vector<uint32_t> workers;
      for (uint32_t r : live) {
        if (r != 0) workers.push_back(r);
      }
      auto me = std::find(workers.begin(), workers.end(), ctx.rank());
      if (me != workers.end()) {
        const size_t my_index = static_cast<size_t>(me - workers.begin());
        for (int unit = 0; unit < kUnits; ++unit) {
          if (static_cast<size_t>(unit) % workers.size() != my_index) continue;
          ctx.compute(milliseconds(5));
          if (changed) break;  // repartition and start over
          util::Bytes b;
          util::Writer w(b);
          w.i64(unit);
          w.i64(unit * unit);
          ctx.world().send(0, kResultTag, std::move(b));
        }
      }
      // Pass complete: idle until repartitioned or dismissed.
      while (!changed) {
        if (ctx.world().proc().iprobe(ctx.world().id(), 0, kDoneTag)) {
          (void)ctx.world().recv(0, kDoneTag);
          return;
        }
        ctx.compute(milliseconds(10));
      }
    }
  });
  JobSpec job;
  job.name = "dyn";
  job.binary = "partition";
  job.nprocs = 4;
  job.policy = FtPolicy::kNotifyViews;
  f.cluster.submit(job);
  f.cluster.run_for(milliseconds(40));
  f.cluster.crash_node(2);  // kills one worker mid-computation
  // Rank 0 finishes once every unit arrived; workers finish after their pass.
  f.cluster.run_for(seconds(5.0));
  int64_t expect = 0;
  for (int u = 0; u < kUnits; ++u) expect += static_cast<int64_t>(u) * u;
  EXPECT_TRUE(output_contains(f.cluster.output("dyn"), "sum=" + std::to_string(expect)));
}

// --------------------------------------------------- mgmt & lifecycle ----

TEST(Management, LoginSubmitStatusViaAsciiProtocol) {
  Fixture f(3);
  auto replies = f.cluster.client_session(
      0, {"LOGIN alice secret USER", "SUBMIT mj ring 3 PROTOCOL=sync INTERVAL_MS=100",
          "PS", "STATUS mj"});
  ASSERT_GE(replies.size(), 5u);
  EXPECT_NE(replies[0].find("STARFISH"), std::string::npos);
  EXPECT_EQ(replies[1], "OK session user");
  EXPECT_EQ(replies[2], "OK submitted mj");
  EXPECT_NE(replies[3].find("mj"), std::string::npos);
  EXPECT_NE(replies[4].find("phase="), std::string::npos);
  ASSERT_TRUE(f.cluster.run_until_done("mj"));
}

TEST(Management, AdminRequiredForClusterConfig) {
  Fixture f(2);
  auto replies = f.cluster.client_session(
      0, {"LOGIN bob whatever USER", "SET scheduler fifo", "NODE DISABLE 1"});
  EXPECT_EQ(replies[2], "ERR management session required");
  EXPECT_EQ(replies[3], "ERR management session required");

  auto admin = f.cluster.client_session(
      1, {"LOGIN root starfish ADMIN", "SET scheduler fifo", "GET scheduler", "NODES"});
  EXPECT_EQ(admin[1], "OK session management");
  EXPECT_EQ(admin[2], "OK set requested");
  // The SET is a totally ordered broadcast; give it a moment, then re-read.
  f.cluster.run_for(milliseconds(20));
  auto check = f.cluster.client_session(0, {"LOGIN root starfish ADMIN", "GET scheduler"});
  EXPECT_EQ(check[2], "OK fifo");
}

TEST(Management, BadLoginAndUnknownCommands) {
  Fixture f(2);
  auto replies = f.cluster.client_session(
      0, {"PS", "LOGIN root wrongpw ADMIN", "LOGIN u p USER", "FLY", "STATUS nope"});
  EXPECT_EQ(replies[1], "ERR login first");
  EXPECT_EQ(replies[2], "ERR bad admin credentials");
  EXPECT_EQ(replies[3], "OK session user");
  EXPECT_NE(replies[4].find("ERR unknown command"), std::string::npos);
  EXPECT_EQ(replies[5], "ERR no such job");
}

TEST(Management, OwnershipEnforcedOnDelete) {
  Fixture f(2);
  auto a = f.cluster.client_session(0, {"LOGIN alice x USER", "SUBMIT owned ring 2"});
  EXPECT_EQ(a[2], "OK submitted owned");
  f.cluster.run_for(milliseconds(50));
  auto b = f.cluster.client_session(1, {"LOGIN mallory x USER", "DELETE owned"});
  EXPECT_EQ(b[2], "ERR not your job");
  auto c = f.cluster.client_session(1, {"LOGIN root starfish ADMIN", "DELETE owned"});
  EXPECT_EQ(c[2], "OK delete requested");
  f.cluster.run_for(milliseconds(100));
  EXPECT_EQ(f.cluster.phase("owned"), AppPhase::kDeleted);
}

TEST(Management, DisabledNodeExcludedFromPlacement) {
  Fixture f(3);
  f.cluster.daemon_at(0).node_ctl(2, false);
  f.cluster.run_for(milliseconds(20));
  f.cluster.submit(ring_job("placed", 3));
  f.cluster.run_for(milliseconds(50));
  EXPECT_TRUE(f.cluster.daemon_at(2).local_ranks("placed").empty());
  // Nodes 0 and 1 host all three ranks between them.
  EXPECT_EQ(f.cluster.daemon_at(0).local_ranks("placed").size() +
                f.cluster.daemon_at(1).local_ranks("placed").size(),
            3u);
  ASSERT_TRUE(f.cluster.run_until_done("placed"));
}

TEST(Lifecycle, SuspendPausesAndResumeFinishes) {
  Fixture f(3);
  f.cluster.submit(ring_job("nap", 3));
  f.cluster.run_for(milliseconds(30));
  f.cluster.daemon_at(0).suspend_app("nap");
  f.cluster.run_for(seconds(2.0));
  EXPECT_EQ(f.cluster.phase("nap"), AppPhase::kSuspended);
  f.cluster.daemon_at(1).resume_app("nap");
  ASSERT_TRUE(f.cluster.run_until_done("nap"));
  EXPECT_TRUE(output_contains(f.cluster.output("nap"), std::to_string(expected_ring_token(3, 40))));
}

TEST(Lifecycle, VmTrapReportsFailure) {
  Fixture f(2);
  f.cluster.registry().register_vm("crash", R"(
func main 0 0
  push_int 1
  push_int 0
  div
  halt
)");
  JobSpec job;
  job.name = "boom";
  job.binary = "crash";
  job.nprocs = 2;
  job.policy = FtPolicy::kKill;
  f.cluster.submit(job);
  EXPECT_FALSE(f.cluster.run_until_done("boom", seconds(10.0)));
  EXPECT_EQ(f.cluster.phase("boom"), AppPhase::kFailed);
}

TEST(Lifecycle, DeterministicTrapExhaustsRestartCap) {
  Fixture f(2);
  f.cluster.registry().register_vm("crash2", R"(
func main 0 0
  push_int 100
  syscall sleep_ms
  push_int 1
  push_int 0
  div
  halt
)");
  JobSpec job;
  job.name = "loopy";
  job.binary = "crash2";
  job.nprocs = 1;
  job.policy = FtPolicy::kRestart;
  job.protocol = CrProtocol::kStopAndSync;
  f.cluster.submit(job);
  EXPECT_FALSE(f.cluster.run_until_done("loopy", seconds(30.0)));
  EXPECT_EQ(f.cluster.phase("loopy"), AppPhase::kFailed);
}

// ------------------------------------------------------- heterogeneity ----

TEST(Heterogeneous, VmLevelCheckpointRestoresAcrossRepresentations) {
  // Mixed cluster: rank placement after the crash moves work onto machines
  // with different endianness/word size; VM-level images convert.
  ClusterOptions opts;
  auto machines = sim::table2_machines();
  opts.machines = {machines[0], machines[1], machines[5], machines[2]};  // LE32, BE32, LE64, BE32
  Fixture f(4, opts);
  auto job = ring_job("hetero", 4);
  job.policy = FtPolicy::kRestart;
  job.protocol = CrProtocol::kStopAndSync;
  job.level = CkptLevel::kVm;
  job.ckpt_interval = milliseconds(50);
  f.cluster.submit(job);
  f.cluster.run_for(milliseconds(130));
  f.cluster.crash_node(0);  // the little-endian 32-bit node dies
  ASSERT_TRUE(f.cluster.run_until_done("hetero"));
  EXPECT_TRUE(
      output_contains(f.cluster.output("hetero"), std::to_string(expected_ring_token(4, 40))));
}

TEST(Heterogeneous, NativeLevelRefusesCrossRepresentationRestore) {
  // Same scenario at the native level: rank 0's image was written on a
  // little-endian 32-bit machine; after the crash it is placed on a machine
  // with a different representation and the restore must fail (homogeneous
  // restriction), eventually failing the app.
  ClusterOptions opts;
  auto machines = sim::table2_machines();
  opts.machines = {machines[0], machines[1], machines[1], machines[1]};  // LE32 + 3x BE32
  Fixture f(4, opts);
  auto job = ring_job("homonly", 4);
  job.policy = FtPolicy::kRestart;
  job.protocol = CrProtocol::kStopAndSync;
  job.level = CkptLevel::kNative;
  job.ckpt_interval = milliseconds(50);
  f.cluster.submit(job);
  // Native dumps take ~105 ms per image plus per-member sync, so the first
  // commit lands ~200 ms in.
  f.cluster.run_for(milliseconds(208));
  ASSERT_TRUE(f.cluster.store().latest_committed("homonly").has_value());
  f.cluster.crash_node(0);
  EXPECT_FALSE(f.cluster.run_until_done("homonly", seconds(30.0)));
  EXPECT_EQ(f.cluster.phase("homonly"), AppPhase::kFailed);
}

// ----------------------------------------------------------- object bus ----

TEST(ObjectBus, FanOutToMultipleListeners) {
  ObjectBus bus;
  int a = 0, b = 0;
  bus.subscribe(EventKind::kCoord, [&](const Event&) { ++a; });
  bus.subscribe(EventKind::kCoord, [&](const Event&) { ++b; });
  bus.subscribe(EventKind::kAppView, [&](const Event&) { a += 100; });
  Event e{EventKind::kCoord, {}, 0};
  bus.post(e);
  EXPECT_EQ(a, 1);  // the kAppView listener did not fire
  EXPECT_EQ(b, 1);
  EXPECT_EQ(bus.events_posted(), 1u);
}

TEST(ObjectBus, PostWithNoListenersIsHarmless) {
  ObjectBus bus;
  Event e{EventKind::kTerminate, {}, 0};
  bus.post(e);
  EXPECT_EQ(bus.events_posted(), 0u);  // nothing delivered, nothing counted
}

TEST(ObjectBus, ListenerMaySubscribeDuringDispatch) {
  ObjectBus bus;
  int late = 0;
  bus.subscribe(EventKind::kResume, [&](const Event&) {
    bus.subscribe(EventKind::kResume, [&](const Event&) { ++late; });
  });
  Event e{EventKind::kResume, {}, 0};
  bus.post(e);  // must not invalidate iteration
  EXPECT_EQ(late, 0);
  bus.post(e);  // the late listener fires from now on
  EXPECT_EQ(late, 1);
}

TEST(ObjectBus, EventCarriesValueAndLinkPayload) {
  ObjectBus bus;
  uint64_t seen_value = 0;
  std::string seen_text;
  bus.subscribe(EventKind::kCheckpointDone, [&](const Event& ev) {
    seen_value = ev.value;
    seen_text = ev.link.text;
  });
  Event e;
  e.kind = EventKind::kCheckpointDone;
  e.value = 42;
  e.link.text = "epoch info";
  bus.post(e);
  EXPECT_EQ(seen_value, 42u);
  EXPECT_EQ(seen_text, "epoch info");
}

// ------------------------------------------------- VM collective syscalls ----

TEST(VmCollectives, BarrierAndAllreduceSyscalls) {
  Fixture f(3);
  f.cluster.registry().register_vm("collect", R"(
func main 0 0
  syscall barrier
  syscall rank
  push_int 1
  add
  syscall allreduce_sum
  syscall rank
  push_int 0
  eq
  jmp_if_false skip
  syscall print
  halt
skip:
  pop
  halt
)");
  JobSpec job;
  job.name = "vmcol";
  job.binary = "collect";
  job.nprocs = 3;
  f.cluster.submit(job);
  ASSERT_TRUE(f.cluster.run_until_done("vmcol"));
  EXPECT_TRUE(output_contains(f.cluster.output("vmcol"), "6"));  // 1+2+3
}

// ------------------------------------------- forked & incremental C/R ----

TEST(ForkedCheckpoint, CutsBlockingTimeAndStillRestores) {
  // libckpt-style copy-on-write checkpointing: the app resumes right after
  // the in-memory snapshot; with plain stop-and-sync it stays frozen for
  // the whole disk write. Completion time difference shows the win.
  auto run_ring = [](bool forked) {
    Fixture f(4);
    auto job = ring_job("fk", 4);
    job.policy = FtPolicy::kRestart;
    job.protocol = CrProtocol::kStopAndSync;
    job.level = CkptLevel::kVm;
    job.ckpt_interval = milliseconds(60);
    job.forked_ckpt = forked;
    f.cluster.submit(job);
    EXPECT_TRUE(f.cluster.run_until_done("fk"));
    EXPECT_TRUE(
        output_contains(f.cluster.output("fk"), std::to_string(expected_ring_token(4, 40))));
    return sim::to_seconds(f.cluster.engine().now());
  };
  const double plain = run_ring(false);
  const double forked = run_ring(true);
  EXPECT_LT(forked, plain);  // less time spent frozen
}

TEST(ForkedCheckpoint, RestartFromForkedEpochIsCorrect) {
  Fixture f(4);
  auto job = ring_job("fkr", 4);
  job.policy = FtPolicy::kRestart;
  job.protocol = CrProtocol::kStopAndSync;
  job.level = CkptLevel::kVm;
  job.ckpt_interval = milliseconds(50);
  job.forked_ckpt = true;
  f.cluster.submit(job);
  f.cluster.run_for(milliseconds(130));
  ASSERT_TRUE(f.cluster.store().latest_committed("fkr").has_value());
  f.cluster.crash_node(2);
  ASSERT_TRUE(f.cluster.run_until_done("fkr"));
  EXPECT_TRUE(
      output_contains(f.cluster.output("fkr"), std::to_string(expected_ring_token(4, 40))));
}

TEST(IncrementalCheckpoint, WritesFewerBytesForSparseState) {
  // A native app with a large, mostly-static state: incremental images
  // should write far fewer bytes than full images.
  auto run = [](bool incremental) {
    Fixture f(2);
    f.cluster.registry().register_native("sparse", [](AppContext& ctx) {
      util::Bytes state(1024 * 1024, std::byte{0});
      int64_t step = 0;
      ctx.set_state_capture([&] { return state; });
      ctx.set_state_restore([&](const util::Bytes& b) {
        state = b;
        util::Reader r(util::as_bytes_view(state));
        step = r.i64().value_or(0);
      });
      while (step < 120) {
        ctx.compute(milliseconds(10));
        ++step;
        util::Bytes head;
        util::Writer w(head);
        w.i64(step);  // only the first few bytes of the state mutate
        std::copy(head.begin(), head.end(), state.begin());
      }
    });
    JobSpec job;
    job.name = "sp";
    job.binary = "sparse";
    job.nprocs = 2;
    job.protocol = CrProtocol::kStopAndSync;
    job.level = CkptLevel::kNative;
    job.ckpt_interval = milliseconds(40);
    job.incremental_ckpt = incremental;
    f.cluster.submit(job);
    EXPECT_TRUE(f.cluster.run_until_done("sp", seconds(60.0)));
    return f.cluster.store().bytes_written();
  };
  const uint64_t full = run(false);
  const uint64_t incr = run(true);
  EXPECT_LT(incr, full / 2);
}

TEST(IncrementalCheckpoint, RestoreFromDeltaEpochResolvesChain) {
  Fixture f(3);
  auto job = ring_job("inc", 3);
  job.policy = FtPolicy::kRestart;
  job.protocol = CrProtocol::kStopAndSync;
  job.level = CkptLevel::kVm;
  job.ckpt_interval = milliseconds(40);
  job.incremental_ckpt = true;
  f.cluster.submit(job);
  // Let several epochs commit so the latest is (almost surely) a delta.
  f.cluster.run_for(milliseconds(200));
  auto committed = f.cluster.store().latest_committed("inc");
  ASSERT_TRUE(committed.has_value());
  EXPECT_GE(*committed, 2u);
  f.cluster.crash_node(1);
  ASSERT_TRUE(f.cluster.run_until_done("inc"));
  EXPECT_TRUE(
      output_contains(f.cluster.output("inc"), std::to_string(expected_ring_token(3, 40))));
}

// ---------------------------------------------------- MPI-2 dynamic spawn ----

TEST(DynamicSpawn, WorldGrowsAndNewRanksParticipate) {
  // The "dynamic MPI-2 programs" of the paper\'s title: an application asks
  // Starfish for more processes at runtime; the world grows, existing ranks
  // get a view upcall, and a collective over the grown world works.
  Fixture f(4);
  f.cluster.registry().register_native("grower", [](AppContext& ctx) {
    constexpr int kGoTag = 3;
    if (ctx.rank() == 0) {
      ctx.spawn_ranks(2);  // grow 2 -> 4
      while (ctx.size() < 4) ctx.compute(milliseconds(10));
      // Give the spawned ranks a moment to boot, then start the collective.
      for (uint32_t r = 1; r < 4; ++r) ctx.world().send(static_cast<int>(r), kGoTag, {});
      auto sum = ctx.world().allreduce(std::vector<int64_t>{1}, mpi::ReduceOp::kSum);
      ctx.print("members=" + std::to_string(sum[0]));
      return;
    }
    (void)ctx.world().recv(0, kGoTag);
    auto sum = ctx.world().allreduce(std::vector<int64_t>{1}, mpi::ReduceOp::kSum);
    if (ctx.rank() == 3) ctx.print("new-rank-sum=" + std::to_string(sum[0]));
  });
  JobSpec job;
  job.name = "grow";
  job.binary = "grower";
  job.nprocs = 2;
  f.cluster.submit(job);
  ASSERT_TRUE(f.cluster.run_until_done("grow", seconds(30.0)));
  EXPECT_TRUE(output_contains(f.cluster.output("grow"), "members=4"));
  EXPECT_TRUE(output_contains(f.cluster.output("grow"), "new-rank-sum=4"));
}

TEST(DynamicSpawn, SpawnedRanksVisibleToDaemons) {
  Fixture f(3);
  f.cluster.registry().register_native("grower2", [](AppContext& ctx) {
    if (ctx.rank() == 0) ctx.spawn_ranks(3);  // 2 -> 5 ranks on 3 nodes
    while (ctx.size() < 5) ctx.compute(milliseconds(10));
    ctx.compute(milliseconds(50));
  });
  JobSpec job;
  job.name = "grow2";
  job.binary = "grower2";
  job.nprocs = 2;
  f.cluster.submit(job);
  ASSERT_TRUE(f.cluster.run_until_done("grow2", seconds(30.0)));
  size_t hosted = 0;
  for (size_t i = 0; i < 3; ++i) hosted += f.cluster.daemon_at(i).local_ranks("grow2").size();
  EXPECT_EQ(hosted, 5u);
}

// ------------------------------------------------------------ migration ----

TEST(Migration, RankMovesToIdleNodeAndFinishes) {
  // Paper section 3.2.1: C/R lets Starfish migrate a process, e.g. when a
  // better node becomes available. Rank 1 moves from node 1 to the idle
  // node 4 mid-run; the job still produces the exact result.
  Fixture f(5);
  auto job = ring_job("mover", 4);  // nodes 0-3 host ranks; node 4 idle
  job.policy = FtPolicy::kRestart;
  job.protocol = CrProtocol::kStopAndSync;
  job.level = CkptLevel::kVm;
  f.cluster.submit(job);
  f.cluster.run_for(milliseconds(60));
  EXPECT_EQ(f.cluster.daemon_at(1).local_ranks("mover"), (std::vector<uint32_t>{1}));
  EXPECT_TRUE(f.cluster.daemon_at(4).local_ranks("mover").empty());

  f.cluster.daemon_at(1).migrate("mover", 1, 4);
  ASSERT_TRUE(f.cluster.run_until_done("mover"));
  EXPECT_TRUE(
      output_contains(f.cluster.output("mover"), std::to_string(expected_ring_token(4, 40))));
  // The rank really moved.
  EXPECT_EQ(f.cluster.daemon_at(4).local_ranks("mover"), (std::vector<uint32_t>{1}));
  EXPECT_TRUE(f.cluster.daemon_at(1).local_ranks("mover").empty());
}

TEST(Migration, MigrationSurvivesLaterCrashOfOldNode) {
  // After rank 1 leaves node 1, killing node 1 must not disturb the app.
  Fixture f(5);
  auto job = ring_job("mover2", 4);
  job.policy = FtPolicy::kRestart;
  job.protocol = CrProtocol::kStopAndSync;
  job.level = CkptLevel::kVm;
  f.cluster.submit(job);
  f.cluster.run_for(milliseconds(60));
  f.cluster.daemon_at(1).migrate("mover2", 1, 4);
  f.cluster.run_for(milliseconds(120));  // checkpoint + move complete
  const uint32_t restarts_before = f.cluster.daemon_at(0).restarts_performed();
  f.cluster.crash_node(1);
  ASSERT_TRUE(f.cluster.run_until_done("mover2"));
  EXPECT_TRUE(
      output_contains(f.cluster.output("mover2"), std::to_string(expected_ring_token(4, 40))));
  // Node 1 hosted nothing anymore, so no restart was needed.
  EXPECT_EQ(f.cluster.daemon_at(0).restarts_performed(), restarts_before);
}

// ---------------------------------------------------------- dynamicity ----

TEST(Dynamicity, NodeAddedAtRuntimeJoinsCluster) {
  Fixture f(2);
  f.cluster.run_for(milliseconds(50));
  f.cluster.add_node();
  f.cluster.run_for(seconds(1.0));
  EXPECT_EQ(f.cluster.daemon_at(0).group().view().size(), 3u);
  EXPECT_EQ(f.cluster.daemon_at(2).group().view().size(), 3u);
  // The newcomer is schedulable.
  f.cluster.submit(ring_job("after-add", 3));
  ASSERT_TRUE(f.cluster.run_until_done("after-add"));
  EXPECT_FALSE(f.cluster.daemon_at(2).local_ranks("after-add").empty());
}

}  // namespace
}  // namespace starfish::core
