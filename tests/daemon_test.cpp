// Daemon-layer tests against a fake process launcher: exercise placement,
// lifecycle bookkeeping, the launcher contract, and the management protocol
// without the full application-process machinery.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/store.hpp"
#include "daemon/daemon.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace starfish::daemon {
namespace {

using sim::milliseconds;
using sim::seconds;

/// Records launches and lets the test script process behaviour.
class FakeLauncher : public ProcessLauncher {
 public:
  struct FakeProcess : ProcessHandle {
    LaunchRequest request;
    sim::HostId host = sim::kInvalidHost;
    std::function<void(const LinkMsg&)> uplink;
    std::vector<LinkMsg> delivered;
    bool terminated = false;

    void deliver(const LinkMsg& msg) override { delivered.push_back(msg); }
    void terminate() override { terminated = true; }
    bool alive() const override { return !terminated; }
  };

  std::unique_ptr<ProcessHandle> launch(sim::Host& host, const LaunchRequest& request,
                                        std::function<void(const LinkMsg&)> uplink) override {
    auto proc = std::make_unique<FakeProcess>();
    proc->request = request;
    proc->host = host.id();
    proc->uplink = std::move(uplink);
    auto* raw = proc.get();
    processes.push_back(raw);
    // Behave like a real process: announce a fake data-path address.
    LinkMsg ready;
    ready.kind = LinkKind::kReady;
    ready.vni_addr = {host.id(), 40000 + next_port_++};
    raw->uplink(ready);
    return proc;
  }

  std::vector<FakeProcess*> processes;  // non-owning; daemons own the handles

 private:
  net::Port next_port_ = 0;
};

struct Fixture {
  sim::Engine eng;
  net::Network net{eng};
  ckpt::CheckpointStore store{eng};
  FakeLauncher launcher;
  std::vector<std::unique_ptr<Daemon>> daemons;

  explicit Fixture(size_t n) {
    std::vector<net::NetAddr> founders;
    for (size_t i = 0; i < n; ++i) {
      auto host = net.add_host("node" + std::to_string(i));
      founders.push_back({host->id(), 1});
    }
    for (size_t i = 0; i < n; ++i) {
      daemons.push_back(std::make_unique<Daemon>(net, *net.host(static_cast<sim::HostId>(i)),
                                                 store, launcher, DaemonConfig{}));
    }
    for (auto& d : daemons) d->start_founding(founders);
    eng.run_for(milliseconds(5));
  }

  JobSpec job(const std::string& name, uint32_t nprocs) {
    JobSpec j;
    j.name = name;
    j.binary = "fake";
    j.nprocs = nprocs;
    return j;
  }
};

TEST(DaemonUnit, PlacementIsRoundRobinAndIdenticalEverywhere) {
  Fixture f(3);
  f.daemons[0]->submit(f.job("app", 7));
  f.eng.run_for(milliseconds(100));
  // 7 ranks over 3 nodes: 0->{0,3,6}, 1->{1,4}, 2->{2,5}.
  EXPECT_EQ(f.daemons[0]->local_ranks("app"), (std::vector<uint32_t>{0, 3, 6}));
  EXPECT_EQ(f.daemons[1]->local_ranks("app"), (std::vector<uint32_t>{1, 4}));
  EXPECT_EQ(f.daemons[2]->local_ranks("app"), (std::vector<uint32_t>{2, 5}));
  EXPECT_EQ(f.launcher.processes.size(), 7u);
}

TEST(DaemonUnit, LaunchRequestCarriesJobAndRank) {
  Fixture f(2);
  auto j = f.job("carry", 2);
  j.policy = FtPolicy::kNotifyViews;
  j.protocol = CrProtocol::kChandyLamport;
  j.ckpt_interval = milliseconds(123);
  f.daemons[1]->submit(j);
  f.eng.run_for(milliseconds(100));
  ASSERT_EQ(f.launcher.processes.size(), 2u);
  for (auto* p : f.launcher.processes) {
    EXPECT_EQ(p->request.job.name, "carry");
    EXPECT_EQ(p->request.job.policy, FtPolicy::kNotifyViews);
    EXPECT_EQ(p->request.job.protocol, CrProtocol::kChandyLamport);
    EXPECT_EQ(p->request.job.ckpt_interval, milliseconds(123));
    EXPECT_EQ(p->request.restore_epoch, kNoRestore);
  }
  EXPECT_NE(f.launcher.processes[0]->request.rank, f.launcher.processes[1]->request.rank);
}

TEST(DaemonUnit, ConfigureArrivesOnceAllAddressesKnown) {
  Fixture f(2);
  f.daemons[0]->submit(f.job("cfg", 4));
  f.eng.run_for(milliseconds(100));
  ASSERT_EQ(f.launcher.processes.size(), 4u);
  for (auto* p : f.launcher.processes) {
    int configures = 0;
    for (const auto& m : p->delivered) {
      if (m.kind == LinkKind::kConfigure) {
        ++configures;
        ASSERT_EQ(m.world.size(), 4u);
        for (const auto& addr : m.world) EXPECT_NE(addr.host, sim::kInvalidHost);
      }
    }
    EXPECT_EQ(configures, 1) << "rank " << p->request.rank;
  }
  EXPECT_EQ(f.daemons[0]->app_phase("cfg"), AppPhase::kRunning);
}

TEST(DaemonUnit, RankDoneEventsCompleteTheApp) {
  Fixture f(2);
  f.daemons[0]->submit(f.job("fin", 2));
  f.eng.run_for(milliseconds(100));
  ASSERT_EQ(f.launcher.processes.size(), 2u);
  for (auto* p : f.launcher.processes) {
    LinkMsg done;
    done.kind = LinkKind::kDone;
    done.ok = true;
    p->uplink(done);
  }
  f.eng.run_for(milliseconds(100));
  EXPECT_EQ(f.daemons[0]->app_phase("fin"), AppPhase::kCompleted);
  EXPECT_EQ(f.daemons[1]->app_phase("fin"), AppPhase::kCompleted);
}

TEST(DaemonUnit, ProcessFailureWithKillPolicyTerminatesAll) {
  Fixture f(2);
  auto j = f.job("boom", 4);
  j.policy = FtPolicy::kKill;
  f.daemons[0]->submit(j);
  f.eng.run_for(milliseconds(100));
  LinkMsg fail;
  fail.kind = LinkKind::kDone;
  fail.ok = false;
  fail.text = "fake trap";
  f.launcher.processes[1]->uplink(fail);
  f.eng.run_for(milliseconds(100));
  EXPECT_EQ(f.daemons[0]->app_phase("boom"), AppPhase::kFailed);
  for (auto* p : f.launcher.processes) EXPECT_TRUE(p->terminated);
}

TEST(DaemonUnit, NotifyPolicyDeliversViewsNotTermination) {
  Fixture f(2);
  auto j = f.job("note", 4);
  j.policy = FtPolicy::kNotifyViews;
  f.daemons[0]->submit(j);
  f.eng.run_for(milliseconds(100));
  LinkMsg fail;
  fail.kind = LinkKind::kDone;
  fail.ok = false;
  f.launcher.processes[2]->uplink(fail);  // rank 2 dies in place
  f.eng.run_for(milliseconds(100));
  const uint32_t dead_rank = f.launcher.processes[2]->request.rank;
  int views_seen = 0;
  for (auto* p : f.launcher.processes) {
    if (p == f.launcher.processes[2]) continue;
    EXPECT_FALSE(p->terminated);
    for (const auto& m : p->delivered) {
      if (m.kind == LinkKind::kAppView) {
        ++views_seen;
        EXPECT_EQ(m.live_ranks.size(), 3u);
        for (auto r : m.live_ranks) EXPECT_NE(r, dead_rank);
      }
    }
  }
  EXPECT_EQ(views_seen, 3);
  EXPECT_EQ(f.daemons[0]->app_phase("note"), AppPhase::kRunning);
}

TEST(DaemonUnit, RestartPolicyRelaunchesEveryRankWithRestoreEpoch) {
  Fixture f(3);
  auto j = f.job("redo", 3);
  j.policy = FtPolicy::kRestart;
  j.protocol = CrProtocol::kStopAndSync;
  f.daemons[0]->submit(j);
  f.eng.run_for(milliseconds(100));
  ASSERT_EQ(f.launcher.processes.size(), 3u);
  // Fake a committed recovery line at epoch 7.
  f.store.commit("redo", 7);
  f.net.crash_host(2);
  f.eng.run_for(seconds(2.0));
  // The two survivors relaunched all 3 ranks between them, each restoring 7.
  ASSERT_GE(f.launcher.processes.size(), 6u);
  size_t restored = 0;
  for (size_t i = 3; i < f.launcher.processes.size(); ++i) {
    EXPECT_EQ(f.launcher.processes[i]->request.restore_epoch, 7u);
    ++restored;
  }
  EXPECT_EQ(restored, 3u);
  // Old processes on surviving nodes were terminated.
  EXPECT_TRUE(f.launcher.processes[0]->terminated);
  EXPECT_TRUE(f.launcher.processes[1]->terminated);
}

TEST(DaemonUnit, SuspendAndResumeReachEveryLocalProcess) {
  Fixture f(2);
  f.daemons[0]->submit(f.job("z", 2));
  f.eng.run_for(milliseconds(100));
  f.daemons[1]->suspend_app("z");
  f.eng.run_for(milliseconds(100));
  f.daemons[0]->resume_app("z");
  f.eng.run_for(milliseconds(100));
  for (auto* p : f.launcher.processes) {
    int suspends = 0, resumes = 0;
    for (const auto& m : p->delivered) {
      if (m.kind == LinkKind::kSuspend) ++suspends;
      if (m.kind == LinkKind::kResume) ++resumes;
    }
    EXPECT_EQ(suspends, 1);
    EXPECT_EQ(resumes, 1);
  }
}

TEST(DaemonUnit, CoordRelayReachesAllProcessesOpaque) {
  Fixture f(2);
  f.daemons[0]->submit(f.job("relay", 3));
  f.eng.run_for(milliseconds(100));
  LinkMsg coord;
  coord.kind = LinkKind::kCoordSend;
  coord.payload = util::Bytes{std::byte{0xde}, std::byte{0xad}};
  f.launcher.processes[0]->uplink(coord);
  f.eng.run_for(milliseconds(100));
  for (auto* p : f.launcher.processes) {
    int coords = 0;
    for (const auto& m : p->delivered) {
      if (m.kind == LinkKind::kCoord) {
        ++coords;
        EXPECT_EQ(m.payload, coord.payload);  // opaque, byte-identical
      }
    }
    EXPECT_EQ(coords, 1) << "rank " << p->request.rank;
  }
}

TEST(DaemonUnit, SubmitWithNoEligibleNodesFails) {
  Fixture f(2);
  f.daemons[0]->node_ctl(0, false);
  f.daemons[0]->node_ctl(1, false);
  f.eng.run_for(milliseconds(50));
  f.daemons[0]->submit(f.job("nowhere", 2));
  f.eng.run_for(milliseconds(100));
  EXPECT_EQ(f.daemons[0]->app_phase("nowhere"), AppPhase::kFailed);
  EXPECT_TRUE(f.launcher.processes.empty());
}

TEST(DaemonUnit, DuplicateSubmissionIgnored) {
  Fixture f(2);
  f.daemons[0]->submit(f.job("dup", 2));
  f.eng.run_for(milliseconds(50));
  f.daemons[1]->submit(f.job("dup", 5));  // same name, different shape
  f.eng.run_for(milliseconds(100));
  EXPECT_EQ(f.launcher.processes.size(), 2u);  // second submission dropped
}

TEST(DaemonUnit, OutputLinesCollectedPerDaemon) {
  Fixture f(2);
  f.daemons[0]->submit(f.job("talky", 2));
  f.eng.run_for(milliseconds(100));
  LinkMsg out;
  out.kind = LinkKind::kOutput;
  out.text = "hello from fake";
  f.launcher.processes[0]->uplink(out);
  f.eng.run_for(milliseconds(50));
  const auto host = f.launcher.processes[0]->host;
  const auto& lines = f.daemons[host]->app_output("talky");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "hello from fake");
}

TEST(DaemonUnit, PackedPlacementStrategyFromReplicatedConfig) {
  Fixture f(3);
  f.daemons[0]->set_config("placement.strategy", "packed");
  f.daemons[0]->set_config("placement.slots", "2");
  f.eng.run_for(milliseconds(50));
  f.daemons[2]->submit(f.job("packed", 5));
  f.eng.run_for(milliseconds(100));
  // Packed with 2 slots: node0 gets ranks {0,1}, node1 {2,3}, node2 {4}.
  EXPECT_EQ(f.daemons[0]->local_ranks("packed"), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(f.daemons[1]->local_ranks("packed"), (std::vector<uint32_t>{2, 3}));
  EXPECT_EQ(f.daemons[2]->local_ranks("packed"), (std::vector<uint32_t>{4}));
}

TEST(DaemonUnit, PlacementStrategySwitchAffectsOnlyLaterJobs) {
  Fixture f(2);
  f.daemons[0]->submit(f.job("before", 2));
  f.eng.run_for(milliseconds(50));
  f.daemons[0]->set_config("placement.strategy", "packed");
  f.eng.run_for(milliseconds(50));
  f.daemons[0]->submit(f.job("after", 2));
  f.eng.run_for(milliseconds(100));
  EXPECT_EQ(f.daemons[0]->local_ranks("before"), (std::vector<uint32_t>{0}));
  EXPECT_EQ(f.daemons[1]->local_ranks("before"), (std::vector<uint32_t>{1}));
  // Packed: both ranks land on node 0.
  EXPECT_EQ(f.daemons[0]->local_ranks("after"), (std::vector<uint32_t>{0, 1}));
  EXPECT_TRUE(f.daemons[1]->local_ranks("after").empty());
}

}  // namespace
}  // namespace starfish::daemon
