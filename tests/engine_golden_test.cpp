// Golden same-seed determinism for the engine overhaul (PR 4).
//
// The engine hot paths were rebuilt (pooled events with inline callback
// storage, ready-queue wakeups, fiber-stack recycling) under a strict
// contract: same (time, sequence) execution order, so same-seed runs replay
// byte-identically. These tests pin that contract to goldens recorded from
// the pre-overhaul engine (commit 49a6878): every scenario must reproduce
// the exact events_executed, final virtual time, fiber-switch count, the
// run-queue depth histogram (which proves the ready queue + timer heap hold
// the same event population as the old single priority queue at every
// dispatch), and the FNV-1a hash of the exported Chrome trace.
//
// Regenerating goldens (only when an *intentional* ordering change ships):
//   STARFISH_GOLDEN_DUMP=1 ./engine_golden_test
// prints the initializer lists to paste below.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "gcs/endpoint.hpp"
#include "net/network.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "util/buffer.hpp"

namespace starfish::sim {
namespace {

struct GoldenResult {
  uint64_t events = 0;       ///< Engine::events_executed()
  int64_t sim_ns = 0;        ///< final Engine::now()
  uint64_t switches = 0;     ///< sim.fiber_switches counter
  uint64_t runq_count = 0;   ///< sim.run_queue_depth histogram count
  uint64_t runq_sum = 0;     ///< ... sum of depths across every dispatch
  uint64_t runq_max = 0;     ///< ... max depth
  uint64_t trace_events = 0; ///< obs::Tracer::recorded()
  uint64_t trace_hash = 0;   ///< FNV-1a 64 of Tracer::to_chrome_json()
};

uint64_t fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

GoldenResult harvest(Engine& eng, const obs::Hub& hub) {
  GoldenResult r;
  r.events = eng.events_executed();
  r.sim_ns = eng.now();
  const obs::Counter* sw = hub.metrics.find_counter("sim.fiber_switches");
  r.switches = sw == nullptr ? 0 : sw->value();
  const obs::Histogram* rq = hub.metrics.find_histogram("sim.run_queue_depth");
  if (rq != nullptr) {
    r.runq_count = rq->count();
    r.runq_sum = rq->sum();
    r.runq_max = rq->max();
  }
  r.trace_events = hub.tracer.recorded();
  r.trace_hash = fnv1a(hub.tracer.to_chrome_json());
  return r;
}

void check(const GoldenResult& got, const GoldenResult& want) {
  if (std::getenv("STARFISH_GOLDEN_DUMP") != nullptr) {
    std::printf("golden: {.events = %llu,\n"
                "        .sim_ns = %lld,\n"
                "        .switches = %llu,\n"
                "        .runq_count = %llu,\n"
                "        .runq_sum = %llu,\n"
                "        .runq_max = %llu,\n"
                "        .trace_events = %llu,\n"
                "        .trace_hash = %lluull}\n",
                static_cast<unsigned long long>(got.events),
                static_cast<long long>(got.sim_ns),
                static_cast<unsigned long long>(got.switches),
                static_cast<unsigned long long>(got.runq_count),
                static_cast<unsigned long long>(got.runq_sum),
                static_cast<unsigned long long>(got.runq_max),
                static_cast<unsigned long long>(got.trace_events),
                static_cast<unsigned long long>(got.trace_hash));
    GTEST_SKIP() << "STARFISH_GOLDEN_DUMP set: printed actuals, skipping compare";
  }
  EXPECT_EQ(got.events, want.events);
  EXPECT_EQ(got.sim_ns, want.sim_ns);
  EXPECT_EQ(got.switches, want.switches);
  EXPECT_EQ(got.runq_count, want.runq_count);
  EXPECT_EQ(got.runq_sum, want.runq_sum);
  EXPECT_EQ(got.runq_max, want.runq_max);
  EXPECT_EQ(got.trace_events, want.trace_events);
  EXPECT_EQ(got.trace_hash, want.trace_hash);
}

// ------------------------------------------------------------------------
// Scenario 1: pure sim-layer kernel. Exercises every scheduling shape the
// overhaul touched: timer events, zero-delay wakes (channel send/recv,
// mutex handoff, condvar broadcast, barrier release), yields, timeouts,
// kills with pending timers, spawn churn, and a run_for / run split.

GoldenResult run_sim_kernel() {
  obs::Hub hub;
  hub.tracer.set_enabled(true);
  Engine eng(/*seed=*/1234);
  eng.set_obs(&hub);

  Channel<int> pipe1(eng);
  Channel<int> pipe2(eng);
  Mutex mu(eng);
  CondVar cv(eng);
  Barrier bar(eng, 3);
  int shared = 0;
  long long sink = 0;

  eng.spawn("producer", [&] {
    for (int i = 0; i < 200; ++i) {
      pipe1.send(i);
      if (i % 5 == 0) eng.yield();
      if (i % 17 == 0) eng.sleep(microseconds(3));
    }
    pipe1.close();
  });
  eng.spawn("relay", [&] {
    for (;;) {
      auto r = pipe1.recv();
      if (!r.ok()) break;
      pipe2.send(*r.value * 2);
    }
    pipe2.close();
  });
  eng.spawn("consumer", [&] {
    for (;;) {
      auto r = pipe2.recv(eng.now() + milliseconds(2));
      if (r.status == RecvStatus::kClosed) break;
      if (r.ok()) sink += *r.value;
    }
  });
  for (int w = 0; w < 3; ++w) {
    eng.spawn("worker", [&, w] {
      for (int round = 0; round < 20; ++round) {
        eng.sleep(microseconds((w * 13 + round * 7) % 23 + 1));
        {
          LockGuard guard(mu);
          shared += w + round;
          eng.sleep(microseconds(2));
        }
        bar.arrive_and_wait();
      }
    });
  }
  eng.spawn("cv-waiter", [&] { cv.wait([&] { return shared > 300; }); });
  eng.spawn("cv-poker", [&] {
    for (int i = 0; i < 50; ++i) {
      eng.sleep(microseconds(40));
      cv.notify_all();
    }
  });
  auto victims = std::make_shared<std::vector<FiberPtr>>();
  eng.spawn("churn", [&eng, victims] {
    for (int i = 0; i < 30; ++i) {
      victims->push_back(eng.spawn("victim", [&eng] { eng.sleep(seconds(5)); }));
      eng.sleep(microseconds(11));
      if (i % 3 == 0) eng.kill(victims->back());
    }
    for (auto& v : *victims) eng.kill(v);
  });

  eng.run_for(milliseconds(1));
  eng.run();
  EXPECT_GT(sink, 0);
  return harvest(eng, hub);
}

TEST(EngineGolden, SimKernelReplaysPreOverhaulHistory) {
  const GoldenResult want = {.events = 797,
                             .sim_ns = 5000319000,
                             .switches = 466,
                             .runq_count = 797,
                             .runq_sum = 45167,
                             .runq_max = 101,
                             .trace_events = 0,
                             .trace_hash = 15209712739998084638ull};
  check(run_sim_kernel(), want);
}

TEST(EngineGolden, SimKernelIsInternallyDeterministic) {
  const GoldenResult a = run_sim_kernel();
  const GoldenResult b = run_sim_kernel();
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.sim_ns, b.sim_ns);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.runq_sum, b.runq_sum);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
}

// ------------------------------------------------------------------------
// Scenario 2: full-stack GCS churn under seeded faults. Every fault verdict
// draws from the engine RNG, so the entire run — including the exported
// trace — is a function of the seed and the engine's dispatch order. A
// one-event reordering anywhere in the overhauled engine shifts the fault
// pattern and changes every field below.

util::Bytes text(const std::string& s) {
  util::Bytes b;
  util::Writer w(b);
  w.raw(std::as_bytes(std::span<const char>(s.data(), s.size())));
  return b;
}

GoldenResult run_gcs_chaos(unsigned shards = 1) {
  obs::Hub hub;
  hub.tracer.set_enabled(true);
  Engine eng(/*seed=*/3);
  eng.set_shards(shards);  // before any host registers its node
  eng.set_obs(&hub);
  net::Network net{eng};
  gcs::GroupConfig config;
  // The golden replays the flat-topology seeded history; pin it so the
  // STARFISH_GCS_TOPOLOGY env lever (used by the sanitizer tree tiers,
  // whose -R 'Chaos' regex also matches this test) cannot flip it.
  config.topology = gcs::Topology::kFlat;

  constexpr size_t kMembers = 4;
  std::vector<std::vector<std::string>> delivered(kMembers);
  std::vector<std::unique_ptr<gcs::GroupEndpoint>> eps;
  std::vector<net::NetAddr> founders;
  for (size_t i = 0; i < kMembers; ++i) {
    auto host = net.add_host("node" + std::to_string(i));
    founders.push_back({host->id(), config.control_port});
  }
  for (size_t i = 0; i < kMembers; ++i) {
    gcs::Callbacks cbs;
    cbs.on_message = [&delivered, i](gcs::MemberId origin, const util::Bytes& payload) {
      delivered[i].push_back(origin.to_string() + ":" +
                             std::string(reinterpret_cast<const char*>(payload.data()),
                                         payload.size()));
    };
    eps.push_back(std::make_unique<gcs::GroupEndpoint>(
        net, *net.host(static_cast<HostId>(i)), config, std::move(cbs)));
  }
  for (auto& ep : eps) ep->start_founding(founders);

  net.faults().set_transport(net::TransportKind::kTcpIp,
                             {.drop = 0.05, .duplicate = 0.05, .jitter = microseconds(200)});
  for (size_t i = 0; i < 2; ++i) {
    auto* ep = eps[i].get();
    net.host(static_cast<HostId>(i))->spawn("sender", [ep, i, &eng] {
      for (int k = 0; k < 5; ++k) {
        eng.sleep(milliseconds(10 + static_cast<int>(i)));
        ep->multicast(text("m" + std::to_string(i) + "." + std::to_string(k)));
      }
    });
  }
  eng.schedule(milliseconds(200), [&net] { net.crash_host(3); });
  eng.run_for(seconds(3));

  // Survivors agree on one delivery order (sanity, not the golden itself).
  // Under this seed all 10 multicasts deliver within the window (the
  // per-source fault lanes draw a different — still deterministic — drop
  // pattern than the old single RNG stream), which is the point: faults
  // included, nothing shifts between runs or shard counts.
  EXPECT_EQ(delivered[0], delivered[1]);
  EXPECT_EQ(delivered[0].size(), 10u);
  return harvest(eng, hub);
}

TEST(EngineGolden, GcsChaosReplaysPreOverhaulHistory) {
  // Regenerated for the sharded-network overhaul (PR 6): per-source-host
  // fault lanes, per-host auto-port counters, and the message-based connect
  // handshake all legitimately reorder the seeded history. Trace hash
  // regenerated again for the GCS wire-format growth (PR 8: the hb_entries
  // field makes every control datagram a few bytes longer, which shifts the
  // stream-retransmit penalties recorded in the fault trace); every count
  // above the hash was unchanged by that growth.
  const GoldenResult want = {.events = 1292,
                             .sim_ns = 3000000000,
                             .switches = 638,
                             .runq_count = 1292,
                             .runq_sum = 7799,
                             .runq_max = 20,
                             .trace_events = 473,
                             .trace_hash = 8668644327926506007ull};
  check(run_gcs_chaos(), want);
}

// The conservative time-window scheduler must not perturb the simulation:
// the same chaos run at 2/4/8 shards reproduces the sequential history
// field-for-field. Run-queue depth stats are scheduler-internal (each shard
// samples its own ready ring), so only the observable fields are compared.
TEST(EngineGolden, GcsChaosIsShardCountInvariant) {
  const GoldenResult seq = run_gcs_chaos(1);
  for (const unsigned shards : {2u, 4u, 8u}) {
    const GoldenResult got = run_gcs_chaos(shards);
    EXPECT_EQ(got.events, seq.events) << "shards=" << shards;
    EXPECT_EQ(got.sim_ns, seq.sim_ns) << "shards=" << shards;
    EXPECT_EQ(got.switches, seq.switches) << "shards=" << shards;
    EXPECT_EQ(got.trace_events, seq.trace_events) << "shards=" << shards;
    EXPECT_EQ(got.trace_hash, seq.trace_hash) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace starfish::sim
