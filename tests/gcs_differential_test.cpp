// Flat-vs-tree differential (PR 8).
//
// The dissemination topology (gcs::Topology) is a transport-layer choice:
// ORDER_REQs travel sender -> sequencer directly in both modes, so gseq
// stamping — and therefore the totally ordered stream — must be
// byte-identical whether ORDER fans out flat or relays down the k-ary
// tree, and whether heartbeats are all-to-all or aggregated. This suite
// pins that equivalence at the GCS layer (fault-free, under seeded ORDER
// loss, and across a crash-driven view change) and end to end at the
// cluster layer (same application output, same checkpoint content hash).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cluster.hpp"
#include "gcs/endpoint.hpp"
#include "gcs/wire.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace starfish::gcs {
namespace {

using sim::milliseconds;
using sim::seconds;

util::Bytes text(const std::string& s) {
  util::Bytes b;
  util::Writer w(b);
  w.raw(std::as_bytes(std::span<const char>(s.data(), s.size())));
  return b;
}

std::string untext(const util::Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

std::string view_event(const View& v) {
  std::string s = "(" + std::to_string(v.view_id) + "|";
  for (size_t i = 0; i < v.members.size(); ++i) {
    if (i) s += ",";
    s += v.members[i].id.to_string();
  }
  return s + ")";
}

/// Everything one run produces that the differential compares.
struct RunResult {
  std::vector<std::vector<std::string>> delivered;    // per member
  std::vector<std::vector<std::string>> view_events;  // per member
};

/// One seeded group run at a given size and topology. `faults` (optional)
/// installs fault plans after founding; `driver` schedules the workload.
template <typename FaultFn, typename DriverFn>
RunResult run_group(size_t n, Topology topo, uint64_t seed, FaultFn faults, DriverFn driver) {
  sim::Engine eng(seed);
  net::Network net(eng);
  GroupConfig config;
  config.topology = topo;
  RunResult result;
  result.delivered.resize(n);
  result.view_events.resize(n);
  std::vector<std::unique_ptr<GroupEndpoint>> eps;
  std::vector<net::NetAddr> founders;
  for (size_t i = 0; i < n; ++i) {
    auto host = net.add_host("node" + std::to_string(i));
    founders.push_back({host->id(), config.control_port});
  }
  for (size_t i = 0; i < n; ++i) {
    Callbacks cbs;
    cbs.on_view = [&result, i](const View& v) { result.view_events[i].push_back(view_event(v)); };
    cbs.on_message = [&result, i](MemberId origin, const util::Bytes& payload) {
      result.delivered[i].push_back(origin.to_string() + ":" + untext(payload));
    };
    eps.push_back(std::make_unique<GroupEndpoint>(net, *net.host(static_cast<sim::HostId>(i)),
                                                  config, std::move(cbs)));
  }
  for (auto& ep : eps) ep->start_founding(founders);
  faults(net);
  driver(eng, net, eps);
  return result;
}

/// Three spread-out senders, `per_sender` messages each, spaced off the
/// heartbeat grid.
void spawn_senders(sim::Engine& eng, net::Network& net,
                   std::vector<std::unique_ptr<GroupEndpoint>>& eps, int per_sender,
                   sim::Duration start_after = milliseconds(10)) {
  const size_t n = eps.size();
  const size_t senders[3] = {0, n / 2, n - 1};
  for (size_t s = 0; s < 3; ++s) {
    const size_t idx = senders[s];
    auto* ep = eps[idx].get();
    net.host(static_cast<sim::HostId>(idx))
        ->spawn("sender", [ep, s, per_sender, start_after, &eng] {
          eng.sleep(start_after + milliseconds(1 + static_cast<int>(s)));
          for (int k = 0; k < per_sender; ++k) {
            ep->multicast(text("s" + std::to_string(s) + "." + std::to_string(k)));
            eng.sleep(milliseconds(7));
          }
        });
  }
}

// ------------------------------------------------------ fault-free runs ----

TEST(GcsDifferential, FlatAndTreeDeliverIdenticalStreams) {
  for (size_t n : {4u, 16u, 64u}) {
    RunResult flat = run_group(n, Topology::kFlat, /*seed=*/7, [](net::Network&) {},
                               [](sim::Engine& eng, net::Network& net, auto& eps) {
                                 spawn_senders(eng, net, eps, 8);
                                 eng.run_for(seconds(1.5));
                               });
    RunResult tree = run_group(n, Topology::kTree, /*seed=*/7, [](net::Network&) {},
                               [](sim::Engine& eng, net::Network& net, auto& eps) {
                                 spawn_senders(eng, net, eps, 8);
                                 eng.run_for(seconds(1.5));
                               });
    // Complete, totally ordered, identical within each run...
    ASSERT_EQ(flat.delivered[0].size(), 24u) << "n=" << n;
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(flat.delivered[i], flat.delivered[0]) << "flat member " << i << " n=" << n;
      ASSERT_EQ(tree.delivered[i], tree.delivered[0]) << "tree member " << i << " n=" << n;
      // ...and byte-identical across topologies, member by member.
      EXPECT_EQ(tree.delivered[i], flat.delivered[i]) << "member " << i << " n=" << n;
      EXPECT_EQ(tree.view_events[i], flat.view_events[i]) << "member " << i << " n=" << n;
    }
  }
}

// --------------------------------------------------- seeded ORDER loss ----

/// Drops a deterministic ~30% of first-attempt ORDER deliveries (keyed by
/// gseq and destination). Later attempts — gap repairs, flush retransmits,
/// tree re-relays — pass, so the protocol's recovery machinery is what
/// reassembles the stream. Identical drop decisions in both topologies.
std::function<bool(const net::Packet&, net::TransportKind)> order_dropper() {
  auto attempts = std::make_shared<std::map<std::pair<uint64_t, uint64_t>, int>>();
  return [attempts](const net::Packet& p, net::TransportKind) {
    auto m = WireMsg::decode(p.payload);
    if (!m.ok() || m.value().kind != MsgKind::kOrder) return false;
    const uint64_t gseq = m.value().gseq;
    const uint64_t dst = p.dst.host;
    int& tries = (*attempts)[{gseq, dst}];
    ++tries;
    return tries == 1 && (gseq * 2654435761ull + dst * 40503ull) % 10 < 3;
  };
}

TEST(GcsDifferential, IdenticalStreamsUnderSeededOrderLoss) {
  for (size_t n : {4u, 16u, 64u}) {
    const auto with_drops = [](net::Network& net) { net.faults().set_filter(order_dropper()); };
    const auto drive = [](sim::Engine& eng, net::Network& net, auto& eps) {
      spawn_senders(eng, net, eps, 8);
      eng.run_for(seconds(4));  // room for stall detection + gap repair
    };
    RunResult flat = run_group(n, Topology::kFlat, /*seed=*/11, with_drops, drive);
    RunResult tree = run_group(n, Topology::kTree, /*seed=*/11, with_drops, drive);
    ASSERT_EQ(flat.delivered[0].size(), 24u) << "n=" << n;
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(flat.delivered[i], flat.delivered[0]) << "flat member " << i << " n=" << n;
      ASSERT_EQ(tree.delivered[i], tree.delivered[0]) << "tree member " << i << " n=" << n;
      EXPECT_EQ(tree.delivered[i], flat.delivered[i]) << "member " << i << " n=" << n;
    }
  }
}

// ------------------------------------------------- crash-driven change ----

TEST(GcsDifferential, SameViewEventsAcrossInteriorCrash) {
  // Host 2 is an interior tree node at n=16, k=4 (children 9..12): its crash
  // exercises orphan re-routing in tree mode and a plain member crash in
  // flat mode. Messages flow before the crash and after the change settles;
  // both topologies must report the same delivered stream and the same view
  // sequence on every survivor.
  const size_t n = 16;
  const auto drive = [](sim::Engine& eng, net::Network& net, auto& eps) {
    spawn_senders(eng, net, eps, 8);  // done by ~70 ms, before the crash
    eng.schedule(milliseconds(200), [&net] { net.crash_host(2); });
    auto* late = eps[1].get();
    net.host(1)->spawn("late-sender", [late, &eng] {
      eng.sleep(milliseconds(1600));  // well after the view change settles
      for (int k = 0; k < 4; ++k) {
        late->multicast(text("late." + std::to_string(k)));
        eng.sleep(milliseconds(7));
      }
    });
    eng.run_for(seconds(3));
  };
  RunResult flat = run_group(n, Topology::kFlat, /*seed=*/3, [](net::Network&) {}, drive);
  RunResult tree = run_group(n, Topology::kTree, /*seed=*/3, [](net::Network&) {}, drive);
  for (size_t i = 0; i < n; ++i) {
    if (i == 2) continue;  // the crashed member
    ASSERT_EQ(flat.delivered[i].size(), 28u) << "flat member " << i;
    EXPECT_EQ(tree.delivered[i], flat.delivered[i]) << "member " << i;
    EXPECT_EQ(tree.view_events[i], flat.view_events[i]) << "member " << i;
    ASSERT_GE(flat.view_events[i].size(), 2u) << "member " << i;
  }
}

// ------------------------------------------------------- cluster level ----

/// Ring exchange where every rank takes one user-initiated checkpoint at a
/// fixed round: the VM state at that syscall is a function of the program
/// alone, so the stored image bytes must not depend on control-plane
/// topology.
std::string ring_ckpt_program(int rounds, int spin) {
  return R"(
func main 0 2
  syscall rank
  store_local 0
  syscall world_size
  store_local 1
  push_int 0
  store_global 0
  push_int 0
  store_global 1
loop:
  load_global 0
  push_int )" + std::to_string(rounds) + R"(
  ge
  jmp_if_false ckpt
  jmp done
ckpt:
  load_global 0
  push_int )" + std::to_string(rounds / 2) + R"(
  eq
  jmp_if_false body
  syscall checkpoint
body:
  push_int )" + std::to_string(spin) + R"(
  syscall spin
  load_local 0
  push_int 0
  eq
  jmp_if_false relay
  push_int 1
  load_global 1
  syscall send_to
  push_int -1
  syscall recv_from
  store_global 1
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
relay:
  push_int -1
  syscall recv_from
  load_local 0
  add
  store_global 1
  load_local 0
  push_int 1
  add
  load_local 1
  mod
  load_global 1
  syscall send_to
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
done:
  load_local 0
  push_int 0
  eq
  jmp_if_false finish
  load_global 1
  syscall print
finish:
  halt
)";
}

struct ClusterArtifacts {
  bool done = false;
  std::vector<std::string> output;
  uint64_t ckpt_hash = 0;
  uint64_t ckpt_images = 0;
};

ClusterArtifacts cluster_run(Topology topo) {
  core::ClusterOptions opts;
  opts.nodes = 4;
  opts.seed = 42;
  opts.daemon.group.topology = topo;
  opts.daemon.group.tree_fanout = 2;  // depth 2 even at 4 nodes
  // This test compares disk-image content hashes across topologies; pin the
  // backend so STARFISH_CKPT_BACKEND=replica sweeps don't leave the disk
  // store empty.
  opts.ckpt_backend = ckpt::CkptBackend::kDisk;
  core::Cluster cluster(opts);
  cluster.registry().register_vm("ring", ring_ckpt_program(20, 50000));
  cluster.boot();
  daemon::JobSpec job;
  job.name = "ring";
  job.binary = "ring";
  job.nprocs = 4;
  job.protocol = daemon::CrProtocol::kUncoordinated;  // capture at the syscall
  job.level = daemon::CkptLevel::kVm;
  cluster.submit(job);
  ClusterArtifacts a;
  a.done = cluster.run_until_done("ring", seconds(30));
  a.output = cluster.output("ring");
  a.ckpt_hash = cluster.store().content_hash();
  a.ckpt_images = cluster.store().image_count();
  return a;
}

TEST(GcsDifferential, ClusterCheckpointContentHashMatches) {
  ClusterArtifacts flat = cluster_run(Topology::kFlat);
  ClusterArtifacts tree = cluster_run(Topology::kTree);
  ASSERT_TRUE(flat.done);
  ASSERT_TRUE(tree.done);
  EXPECT_EQ(flat.output, tree.output);
  ASSERT_EQ(flat.ckpt_images, 4u);  // one user-initiated image per rank
  EXPECT_EQ(tree.ckpt_images, flat.ckpt_images);
  EXPECT_EQ(tree.ckpt_hash, flat.ckpt_hash);
}

// ------------------------------------------------- topology resolution ----

TEST(GcsDifferential, TreeTopologySelectableAndReported) {
  sim::Engine eng(1);
  net::Network net(eng);
  GroupConfig config;
  config.topology = Topology::kTree;
  config.tree_fanout = 2;
  auto host = net.add_host("solo");
  GroupEndpoint ep(net, *host, config, {});
  EXPECT_EQ(ep.topology(), Topology::kTree);
  GroupConfig flat_config;
  flat_config.topology = Topology::kFlat;
  auto host2 = net.add_host("solo2");
  GroupEndpoint ep2(net, *host2, flat_config, {});
  EXPECT_EQ(ep2.topology(), Topology::kFlat);
}

}  // namespace
}  // namespace starfish::gcs
