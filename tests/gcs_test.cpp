#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "gcs/endpoint.hpp"
#include "gcs/lightweight.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace starfish::gcs {
namespace {

using sim::milliseconds;
using sim::seconds;

util::Bytes text(const std::string& s) {
  util::Bytes b;
  util::Writer w(b);
  w.raw(std::as_bytes(std::span<const char>(s.data(), s.size())));
  return b;
}

std::string untext(const util::Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// N daemons founding one group; records every delivery per member.
struct Cluster {
  sim::Engine eng;
  net::Network net{eng};
  std::vector<std::unique_ptr<GroupEndpoint>> eps;
  std::vector<std::vector<std::string>> delivered;  // per member: "origin:payload"
  std::vector<std::vector<View>> views;             // per member

  explicit Cluster(size_t n, GroupConfig config = {}) {
    delivered.resize(n);
    views.resize(n);
    std::vector<net::NetAddr> founders;
    for (size_t i = 0; i < n; ++i) {
      auto host = net.add_host("node" + std::to_string(i));
      founders.push_back({host->id(), config.control_port});
    }
    for (size_t i = 0; i < n; ++i) {
      Callbacks cbs;
      cbs.on_view = [this, i](const View& v) { views[i].push_back(v); };
      cbs.on_message = [this, i](MemberId origin, const util::Bytes& payload) {
        delivered[i].push_back(origin.to_string() + ":" + untext(payload));
      };
      eps.push_back(std::make_unique<GroupEndpoint>(net, *net.host(static_cast<sim::HostId>(i)),
                                                    config, std::move(cbs)));
    }
    for (auto& ep : eps) ep->start_founding(founders);
  }

  void run_for(sim::Duration d) { eng.run_for(d); }
  void stop_all() {
    for (auto& ep : eps) ep->shutdown();
  }
};

// ---------------------------------------------------------- membership ----

TEST(Group, FoundingViewDeliveredEverywhere) {
  Cluster c(4);
  c.run_for(milliseconds(10));
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(c.views[static_cast<size_t>(i)].size(), 1u) << "member " << i;
    EXPECT_EQ(c.views[static_cast<size_t>(i)][0].size(), 4u);
    EXPECT_EQ(c.views[static_cast<size_t>(i)][0].view_id, 1u);
  }
  EXPECT_TRUE(c.eps[0]->is_coordinator());
  EXPECT_FALSE(c.eps[1]->is_coordinator());
}

TEST(Group, TotalOrderAcrossConcurrentSenders) {
  Cluster c(4);
  // Every member multicasts interleaved messages at slightly different times.
  for (size_t i = 0; i < 4; ++i) {
    auto* ep = c.eps[i].get();
    c.net.host(static_cast<sim::HostId>(i))->spawn("sender", [ep, i, &c] {
      for (int k = 0; k < 5; ++k) {
        c.eng.sleep(milliseconds(1 + static_cast<int>(i)));
        ep->multicast(text("m" + std::to_string(i) + "." + std::to_string(k)));
      }
    });
  }
  c.run_for(seconds(1));
  // All members delivered the same sequence, in the same order.
  ASSERT_EQ(c.delivered[0].size(), 20u);
  for (size_t i = 1; i < 4; ++i) EXPECT_EQ(c.delivered[i], c.delivered[0]);
}

TEST(Group, SelfDeliveryIncluded) {
  Cluster c(2);
  c.net.host(0)->spawn("sender", [&] { c.eps[0]->multicast(text("hello")); });
  c.run_for(milliseconds(50));
  ASSERT_EQ(c.delivered[0].size(), 1u);
  EXPECT_EQ(c.delivered[0][0], "m0.0:hello");
  EXPECT_EQ(c.delivered[1], c.delivered[0]);
}

TEST(Group, SingleMemberGroupWorks) {
  Cluster c(1);
  c.net.host(0)->spawn("sender", [&] {
    c.eps[0]->multicast(text("solo"));
  });
  c.run_for(milliseconds(50));
  ASSERT_EQ(c.delivered[0].size(), 1u);
  EXPECT_TRUE(c.eps[0]->is_coordinator());
}

TEST(Group, MemberCrashInstallsSmallerView) {
  Cluster c(4);
  c.eng.schedule(milliseconds(100), [&] { c.net.crash_host(3); });
  c.run_for(seconds(1.5));
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_GE(c.views[i].size(), 2u) << "member " << i;
    const View& v = c.views[i].back();
    EXPECT_EQ(v.size(), 3u);
    EXPECT_FALSE(v.contains(MemberId{3, 0}));
  }
}

TEST(Group, CoordinatorCrashPromotesNextMember) {
  Cluster c(4);
  c.eng.schedule(milliseconds(100), [&] { c.net.crash_host(0); });
  c.run_for(seconds(1.5));
  for (size_t i = 1; i < 4; ++i) {
    ASSERT_GE(c.views[i].size(), 2u);
    const View& v = c.views[i].back();
    EXPECT_EQ(v.size(), 3u);
    EXPECT_EQ(v.coordinator().id, (MemberId{1, 0}));
  }
  EXPECT_TRUE(c.eps[1]->is_coordinator());
}

TEST(Group, MulticastSurvivesCoordinatorCrash) {
  // Requests in flight to a dying coordinator are re-submitted to its
  // successor; nothing is lost and no message is delivered twice.
  Cluster c(3);
  c.net.host(1)->spawn("sender", [&] {
    for (int k = 0; k < 30; ++k) {
      c.eng.sleep(milliseconds(10));
      c.eps[1]->multicast(text("x" + std::to_string(k)));
    }
  });
  c.eng.schedule(milliseconds(100), [&] { c.net.crash_host(0); });
  c.run_for(seconds(2));
  // Members 1 and 2 must agree and must have all 30 messages exactly once.
  EXPECT_EQ(c.delivered[1], c.delivered[2]);
  ASSERT_EQ(c.delivered[1].size(), 30u);
  for (int k = 0; k < 30; ++k) {
    EXPECT_EQ(c.delivered[1][static_cast<size_t>(k)], "m1.0:x" + std::to_string(k));
  }
}

TEST(Group, TwoSimultaneousCrashes) {
  Cluster c(5);
  c.eng.schedule(milliseconds(100), [&] {
    c.net.crash_host(0);
    c.net.crash_host(2);
  });
  c.run_for(seconds(2));
  for (size_t i : {1u, 3u, 4u}) {
    const View& v = c.views[i].back();
    EXPECT_EQ(v.size(), 3u) << "member " << i;
    EXPECT_EQ(v.coordinator().id, (MemberId{1, 0}));
  }
}

TEST(Group, CascadingCoordinatorCrashes) {
  // Kill the coordinator, then kill its successor mid-reconfiguration.
  Cluster c(4);
  c.eng.schedule(milliseconds(100), [&] { c.net.crash_host(0); });
  c.eng.schedule(milliseconds(420), [&] { c.net.crash_host(1); });
  c.run_for(seconds(3));
  for (size_t i : {2u, 3u}) {
    const View& v = c.views[i].back();
    EXPECT_EQ(v.size(), 2u) << "member " << i;
    EXPECT_EQ(v.coordinator().id, (MemberId{2, 0}));
  }
}

TEST(Group, GracefulLeaveShrinksView) {
  Cluster c(3);
  c.net.host(2)->spawn("leaver", [&] {
    c.eng.sleep(milliseconds(100));
    c.eps[2]->leave();
  });
  c.run_for(seconds(1));
  for (size_t i = 0; i < 2; ++i) {
    const View& v = c.views[i].back();
    EXPECT_EQ(v.size(), 2u);
    EXPECT_FALSE(v.contains(MemberId{2, 0}));
  }
  EXPECT_FALSE(c.eps[2]->in_view());
}

TEST(Group, CoordinatorLeaveHandsOff) {
  Cluster c(3);
  c.net.host(0)->spawn("leaver", [&] {
    c.eng.sleep(milliseconds(100));
    c.eps[0]->leave();
  });
  c.run_for(seconds(1));
  for (size_t i = 1; i < 3; ++i) {
    const View& v = c.views[i].back();
    EXPECT_EQ(v.size(), 2u);
    EXPECT_EQ(v.coordinator().id, (MemberId{1, 0}));
  }
}

TEST(Group, LateJoinerAdmitted) {
  Cluster c(3);
  auto newcomer_host = c.net.add_host("node3");
  std::vector<View> joiner_views;
  Callbacks cbs;
  cbs.on_view = [&](const View& v) { joiner_views.push_back(v); };
  GroupEndpoint joiner(c.net, *newcomer_host, GroupConfig{}, std::move(cbs));
  c.eng.schedule(milliseconds(200), [&] {
    joiner.start_joining({{0, 1}, {1, 1}, {2, 1}});
  });
  c.run_for(seconds(1.5));
  ASSERT_FALSE(joiner_views.empty());
  EXPECT_EQ(joiner_views.back().size(), 4u);
  EXPECT_TRUE(joiner.in_view());
  // Existing members see the larger view too.
  EXPECT_EQ(c.views[0].back().size(), 4u);
  // The joiner has the highest rank, so it does not coordinate.
  EXPECT_FALSE(joiner.is_coordinator());
  joiner.shutdown();
  c.stop_all();
}

TEST(Group, JoinerReceivesStateSnapshot) {
  Cluster c(2);
  std::string coord_state = "replicated-config-v7";
  // Coordinator serves state; the cluster fixture's callbacks don't set
  // get_state, so rewire endpoint 0 before any join happens.
  Callbacks cbs0;
  cbs0.get_state = [&] { return text(coord_state); };
  c.eps[0]->set_callbacks(std::move(cbs0));

  auto newcomer_host = c.net.add_host("node2");
  std::string received_state;
  Callbacks cbs;
  cbs.set_state = [&](const util::Bytes& blob) { received_state = untext(blob); };
  GroupEndpoint joiner(c.net, *newcomer_host, GroupConfig{}, std::move(cbs));
  c.eng.schedule(milliseconds(100), [&] { joiner.start_joining({{0, 1}}); });
  c.run_for(seconds(1));
  EXPECT_EQ(received_state, "replicated-config-v7");
  joiner.shutdown();
  c.stop_all();
}

TEST(Group, RebootedHostRejoinsWithNewIncarnation) {
  Cluster c(3);
  c.eng.schedule(milliseconds(100), [&] { c.net.crash_host(2); });
  c.run_for(seconds(1));
  ASSERT_EQ(c.views[0].back().size(), 2u);

  // Reboot and rejoin as a fresh incarnation.
  c.net.host(2)->reboot();
  std::vector<View> rejoin_views;
  Callbacks cbs;
  cbs.on_view = [&](const View& v) { rejoin_views.push_back(v); };
  GroupEndpoint reborn(c.net, *c.net.host(2), GroupConfig{}, std::move(cbs));
  c.net.host(2)->spawn("rejoin", [&] { reborn.start_joining({{0, 1}, {1, 1}}); });
  c.run_for(seconds(1.5));
  ASSERT_FALSE(rejoin_views.empty());
  EXPECT_EQ(rejoin_views.back().size(), 3u);
  EXPECT_TRUE(rejoin_views.back().contains(MemberId{2, 1}));  // incarnation 1
  EXPECT_FALSE(rejoin_views.back().contains(MemberId{2, 0}));
  reborn.shutdown();
  c.stop_all();
}

TEST(Group, VirtualSynchronySurvivorsAgreeOnDeliveredSet) {
  // Heavy concurrent traffic with a mid-stream crash: all survivors must
  // deliver identical sequences (same set, same order).
  Cluster c(4);
  for (size_t i = 0; i < 4; ++i) {
    auto* ep = c.eps[i].get();
    c.net.host(static_cast<sim::HostId>(i))->spawn("sender", [ep, i, &c] {
      for (int k = 0; k < 40; ++k) {
        c.eng.sleep(milliseconds(5));
        ep->multicast(text("s" + std::to_string(i) + "." + std::to_string(k)));
      }
    });
  }
  c.eng.schedule(milliseconds(97), [&] { c.net.crash_host(3); });
  c.run_for(seconds(3));
  EXPECT_EQ(c.delivered[0], c.delivered[1]);
  EXPECT_EQ(c.delivered[1], c.delivered[2]);
  // Survivors' own messages all go through (40 each), plus whatever member 3
  // got sequenced before dying.
  EXPECT_GE(c.delivered[0].size(), 120u);
}

TEST(Group, NoDuplicateDeliveryAcrossViewChange) {
  Cluster c(3);
  c.net.host(2)->spawn("sender", [&] {
    for (int k = 0; k < 50; ++k) {
      c.eng.sleep(milliseconds(7));
      c.eps[2]->multicast(text("d" + std::to_string(k)));
    }
  });
  c.eng.schedule(milliseconds(120), [&] { c.net.crash_host(0); });
  c.run_for(seconds(3));
  ASSERT_EQ(c.delivered[1].size(), 50u);
  for (int k = 0; k < 50; ++k) {
    EXPECT_EQ(c.delivered[1][static_cast<size_t>(k)], "m2.0:d" + std::to_string(k));
  }
  EXPECT_EQ(c.delivered[1], c.delivered[2]);
}

// Parameterized sweep: membership converges for a range of cluster sizes
// and crash subsets.
class CrashSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CrashSweep, SurvivorsConvergeToCorrectView) {
  const int n = std::get<0>(GetParam());
  const int crash = std::get<1>(GetParam());
  Cluster c(static_cast<size_t>(n));
  c.eng.schedule(milliseconds(100), [&] { c.net.crash_host(static_cast<sim::HostId>(crash)); });
  c.run_for(seconds(2));
  for (int i = 0; i < n; ++i) {
    if (i == crash) continue;
    const View& v = c.views[static_cast<size_t>(i)].back();
    EXPECT_EQ(v.size(), static_cast<size_t>(n - 1));
    EXPECT_FALSE(v.contains(MemberId{static_cast<sim::HostId>(crash), 0}));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndVictims, CrashSweep,
    ::testing::Values(std::make_tuple(2, 0), std::make_tuple(2, 1), std::make_tuple(3, 1),
                      std::make_tuple(5, 4), std::make_tuple(8, 0), std::make_tuple(8, 5)));

TEST(Group, JoinerDuringHeavyTrafficSeesConsistentSuffix) {
  // A member joins while multicasts are flowing; after its first view its
  // delivered sequence must be a suffix-consistent continuation of what the
  // founders deliver (no gaps, no duplicates, same order).
  Cluster c(3);
  for (size_t i = 0; i < 3; ++i) {
    auto* ep = c.eps[i].get();
    c.net.host(static_cast<sim::HostId>(i))->spawn("tx", [ep, i, &c] {
      for (int k = 0; k < 60; ++k) {
        c.eng.sleep(milliseconds(7));
        ep->multicast(text("j" + std::to_string(i) + "." + std::to_string(k)));
      }
    });
  }
  auto newcomer_host = c.net.add_host("node3");
  std::vector<std::string> joiner_msgs;
  Callbacks cbs;
  cbs.on_message = [&](MemberId origin, const util::Bytes& payload) {
    joiner_msgs.push_back(origin.to_string() + ":" + untext(payload));
  };
  GroupEndpoint joiner(c.net, *newcomer_host, GroupConfig{}, std::move(cbs));
  c.eng.schedule(milliseconds(150), [&] { joiner.start_joining({{0, 1}, {1, 1}}); });
  c.run_for(seconds(2));
  ASSERT_FALSE(joiner_msgs.empty());
  // The joiner\'s sequence appears as a contiguous suffix of member 0\'s.
  const auto& full = c.delivered[0];
  ASSERT_GE(full.size(), joiner_msgs.size());
  auto it = std::search(full.begin(), full.end(), joiner_msgs.begin(), joiner_msgs.end());
  EXPECT_NE(it, full.end()) << "joiner sequence is not a contiguous run of the group order";
  EXPECT_EQ(static_cast<size_t>(full.end() - it), joiner_msgs.size());
  joiner.shutdown();
  c.stop_all();
}

TEST(Group, DeterministicReplayAcrossRuns) {
  // The same scenario (traffic + crash) delivers bit-identical sequences on
  // every run — the reproducibility claim of the whole simulator.
  auto run_once = [] {
    Cluster c(4);
    for (size_t i = 0; i < 4; ++i) {
      auto* ep = c.eps[i].get();
      c.net.host(static_cast<sim::HostId>(i))->spawn("tx", [ep, i, &c] {
        for (int k = 0; k < 20; ++k) {
          c.eng.sleep(milliseconds(3 + static_cast<int64_t>(i)));
          ep->multicast(text("d" + std::to_string(i) + "." + std::to_string(k)));
        }
      });
    }
    c.eng.schedule(milliseconds(60), [&] { c.net.crash_host(2); });
    c.run_for(seconds(2));
    auto result = c.delivered[0];
    c.stop_all();
    return result;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Group, StabilityGcBoundsRetransmissionLog) {
  // Under sustained traffic with no view changes, heartbeat-advertised
  // delivery progress lets members prune the per-view retransmission log;
  // memory stays bounded instead of growing with every multicast.
  Cluster c(3);
  for (size_t i = 0; i < 3; ++i) {
    auto* ep = c.eps[i].get();
    c.net.host(static_cast<sim::HostId>(i))->spawn("tx", [ep, i, &c] {
      for (int k = 0; k < 400; ++k) {
        c.eng.sleep(milliseconds(2));
        ep->multicast(text("s" + std::to_string(i) + "." + std::to_string(k)));
      }
    });
  }
  c.run_for(seconds(2));
  // 1200 messages delivered...
  ASSERT_EQ(c.delivered[0].size(), 1200u);
  // ...but the log retains only the unstable tail (messages sent since the
  // last heartbeat round), far fewer than the total.
  EXPECT_LT(c.eps[0]->retransmission_log_size(), 200u);
  EXPECT_LT(c.eps[1]->retransmission_log_size(), 200u);
  // And a crash right after heavy pruning still recovers consistently.
  c.eng.schedule(milliseconds(1), [&] { c.net.crash_host(0); });
  c.run_for(seconds(2));
  EXPECT_EQ(c.delivered[1], c.delivered[2]);
}

// ------------------------------------------------------- lightweight ----

struct LwCluster {
  sim::Engine eng;
  net::Network net{eng};
  std::vector<std::unique_ptr<GroupEndpoint>> eps;
  std::vector<std::unique_ptr<LightweightGroups>> lw;
  std::map<std::pair<size_t, std::string>, std::vector<LwView>> lw_views;
  std::map<std::pair<size_t, std::string>, std::vector<std::string>> lw_msgs;

  explicit LwCluster(size_t n) {
    std::vector<net::NetAddr> founders;
    for (size_t i = 0; i < n; ++i) {
      auto host = net.add_host("node" + std::to_string(i));
      founders.push_back({host->id(), 1});
    }
    for (size_t i = 0; i < n; ++i) {
      eps.push_back(std::make_unique<GroupEndpoint>(net, *net.host(static_cast<sim::HostId>(i)),
                                                    GroupConfig{}, Callbacks{}));
      lw.push_back(std::make_unique<LightweightGroups>(*eps[i], Callbacks{}));
    }
    for (auto& ep : eps) ep->start_founding(founders);
  }

  std::vector<std::string>& msgs(size_t i, const std::string& group) {
    return lw_msgs[{i, group}];
  }
  std::vector<LwView>& vws(size_t i, const std::string& group) { return lw_views[{i, group}]; }

  LwCallbacks callbacks_for(size_t i, const std::string& group) {
    LwCallbacks cbs;
    cbs.on_view = [this, i, group](const LwView& v) { lw_views[{i, group}].push_back(v); };
    cbs.on_message = [this, i, group](MemberId origin, const util::Bytes& payload) {
      lw_msgs[{i, group}].push_back(origin.to_string() + ":" + untext(payload));
    };
    return cbs;
  }
};

TEST(Lightweight, JoinBuildsSubgroupView) {
  LwCluster c(4);
  c.net.host(0)->spawn("j0", [&] { c.lw[0]->lw_join("appA", c.callbacks_for(0, "appA")); });
  c.net.host(1)->spawn("j1", [&] { c.lw[1]->lw_join("appA", c.callbacks_for(1, "appA")); });
  c.eng.run_for(seconds(0.5));
  auto v0 = c.lw[0]->lw_view("appA");
  ASSERT_TRUE(v0.has_value());
  EXPECT_EQ(v0->members.size(), 2u);
  // Non-members know the group exists (replicated map) but get no upcalls.
  EXPECT_TRUE(c.lw[2]->lw_view("appA").has_value());
  EXPECT_TRUE(c.vws(2, "appA").empty());
}

TEST(Lightweight, MessagesOnlyReachGroupMembers) {
  LwCluster c(4);
  c.net.host(0)->spawn("go", [&] {
    c.lw[0]->lw_join("appA", c.callbacks_for(0, "appA"));
    c.lw[1]->lw_join("appA", c.callbacks_for(1, "appA"));
    c.eng.sleep(milliseconds(100));
    c.lw[0]->lw_multicast("appA", text("work"));
  });
  c.eng.run_for(seconds(0.5));
  ASSERT_EQ(c.msgs(1, "appA").size(), 1u);
  EXPECT_EQ(c.msgs(1, "appA")[0], "m0.0:work");
  EXPECT_EQ(c.msgs(0, "appA").size(), 1u);  // sender's daemon is a member
  EXPECT_TRUE(c.msgs(2, "appA").empty());
  EXPECT_TRUE(c.msgs(3, "appA").empty());
  EXPECT_GE(c.lw[2]->lw_messages_filtered(), 1u);
}

TEST(Lightweight, DisjointGroupsDoNotInterfere) {
  LwCluster c(4);
  c.net.host(0)->spawn("go", [&] {
    c.lw[0]->lw_join("appA", c.callbacks_for(0, "appA"));
    c.lw[1]->lw_join("appA", c.callbacks_for(1, "appA"));
    c.lw[2]->lw_join("appB", c.callbacks_for(2, "appB"));
    c.lw[3]->lw_join("appB", c.callbacks_for(3, "appB"));
    c.eng.sleep(milliseconds(100));
    c.lw[0]->lw_multicast("appA", text("a"));
    c.lw[2]->lw_multicast("appB", text("b"));
  });
  c.eng.run_for(seconds(0.5));
  EXPECT_EQ(c.msgs(1, "appA").size(), 1u);
  EXPECT_EQ(c.msgs(3, "appB").size(), 1u);
  EXPECT_TRUE(c.msgs(1, "appB").empty());
  EXPECT_TRUE(c.msgs(3, "appA").empty());
}

TEST(Lightweight, NodeCrashProjectsOntoAffectedGroupsOnly) {
  // Paper figure 2: p3 is in two lightweight groups; its failure must be
  // reported in both, but a group not containing p3 must see nothing.
  LwCluster c(4);
  c.net.host(0)->spawn("go", [&] {
    c.lw[0]->lw_join("appA", c.callbacks_for(0, "appA"));
    c.lw[2]->lw_join("appA", c.callbacks_for(2, "appA"));
    c.lw[2]->lw_join("appB", c.callbacks_for(2, "appB"));
    c.lw[3]->lw_join("appB", c.callbacks_for(3, "appB"));
    c.lw[0]->lw_join("appC", c.callbacks_for(0, "appC"));
    c.lw[1]->lw_join("appC", c.callbacks_for(1, "appC"));
  });
  c.eng.schedule(milliseconds(200), [&] { c.net.crash_host(2); });
  c.eng.run_for(seconds(2));

  // appA at member 0: last view excludes m2.
  ASSERT_FALSE(c.vws(0, "appA").empty());
  EXPECT_FALSE(c.vws(0, "appA").back().contains(MemberId{2, 0}));
  ASSERT_FALSE(c.vws(3, "appB").empty());
  EXPECT_FALSE(c.vws(3, "appB").back().contains(MemberId{2, 0}));
  // appC (members 0,1) saw only its join views — no crash-induced view.
  const auto& c_views = c.vws(0, "appC");
  ASSERT_FALSE(c_views.empty());
  EXPECT_EQ(c_views.back().members.size(), 2u);
}

TEST(Lightweight, LeaveShrinksLwViewWithoutHeavyChange) {
  LwCluster c(3);
  c.net.host(0)->spawn("go", [&] {
    c.lw[0]->lw_join("app", c.callbacks_for(0, "app"));
    c.lw[1]->lw_join("app", c.callbacks_for(1, "app"));
    c.lw[2]->lw_join("app", c.callbacks_for(2, "app"));
    c.eng.sleep(milliseconds(100));
    c.lw[2]->lw_leave("app");
  });
  c.eng.run_for(seconds(0.5));
  ASSERT_FALSE(c.vws(0, "app").empty());
  EXPECT_EQ(c.vws(0, "app").back().members.size(), 2u);
  // The heavy view never changed.
  EXPECT_EQ(c.eps[0]->view().view_id, 1u);
  EXPECT_EQ(c.eps[0]->view().size(), 3u);
}

TEST(Lightweight, OrderingConsistentAcrossMembers) {
  LwCluster c(3);
  c.net.host(0)->spawn("go", [&] {
    for (size_t i = 0; i < 3; ++i) c.lw[i]->lw_join("app", c.callbacks_for(i, "app"));
    c.eng.sleep(milliseconds(100));
  });
  for (size_t i = 0; i < 3; ++i) {
    c.net.host(static_cast<sim::HostId>(i))->spawn("tx", [&, i] {
      c.eng.sleep(milliseconds(150));
      for (int k = 0; k < 10; ++k) {
        c.lw[i]->lw_multicast("app", text(std::to_string(i) + "." + std::to_string(k)));
        c.eng.sleep(milliseconds(3));
      }
    });
  }
  c.eng.run_for(seconds(1));
  ASSERT_EQ(c.msgs(0, "app").size(), 30u);
  EXPECT_EQ(c.msgs(0, "app"), c.msgs(1, "app"));
  EXPECT_EQ(c.msgs(1, "app"), c.msgs(2, "app"));
}

}  // namespace
}  // namespace starfish::gcs
