#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"
#include "mpi/proc.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace starfish::mpi {
namespace {

using sim::milliseconds;
using sim::seconds;

util::Bytes blob(size_t n, uint8_t fill) { return util::Bytes(n, std::byte{fill}); }

util::Bytes text(const std::string& s) {
  return util::Bytes(reinterpret_cast<const std::byte*>(s.data()),
                     reinterpret_cast<const std::byte*>(s.data() + s.size()));
}

std::string untext(const util::Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// N single-process hosts with wired MPI Procs.
struct World {
  sim::Engine eng;
  net::Network net{eng};
  std::vector<std::unique_ptr<Proc>> procs;

  explicit World(uint32_t n, net::TransportKind kind = net::TransportKind::kBipMyrinet,
                 ProcConfig config = {}, bool polling = true) {
    for (uint32_t i = 0; i < n; ++i) net.add_host("node" + std::to_string(i));
    std::vector<net::NetAddr> addrs;
    for (uint32_t i = 0; i < n; ++i) {
      procs.push_back(std::make_unique<Proc>(net, *net.host(i), kind, config, polling));
      addrs.push_back(procs.back()->addr());
    }
    for (uint32_t i = 0; i < n; ++i) procs[i]->configure_world(i, addrs);
  }

  /// Runs `body(rank, proc)` as the application fiber of every process.
  template <typename Body>
  void run_app(Body body) {
    for (uint32_t i = 0; i < procs.size(); ++i) {
      net.host(i)->spawn("app", [this, i, body] { body(i, *procs[i]); });
    }
    eng.run_for(seconds(30));
  }
};

// ----------------------------------------------------------------- p2p ----

TEST(P2P, BlockingSendRecv) {
  World w(2);
  std::string got;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 0) {
      p.send(kWorldCommId, 1, 7, text("hello from 0"));
    } else {
      RecvStatus st;
      got = untext(p.recv(kWorldCommId, 0, 7, &st));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, 12u);
    }
  });
  EXPECT_EQ(got, "hello from 0");
}

TEST(P2P, EagerBeforeReceivePosted) {
  // Eager messages arrive before the receiver calls recv; the polling
  // thread parks them in the unexpected queue.
  World w(2);
  std::string got;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 0) {
      p.send(kWorldCommId, 1, 1, text("early"));
    } else {
      w.eng.sleep(milliseconds(50));
      EXPECT_GE(p.unexpected_depth(), 1u);
      got = untext(p.recv(kWorldCommId, 0, 1));
    }
  });
  EXPECT_EQ(got, "early");
}

TEST(P2P, TagMatchingSelectsRightMessage) {
  World w(2);
  std::string got_a, got_b;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 0) {
      p.send(kWorldCommId, 1, 10, text("ten"));
      p.send(kWorldCommId, 1, 20, text("twenty"));
    } else {
      w.eng.sleep(milliseconds(10));
      got_b = untext(p.recv(kWorldCommId, 0, 20));  // out of arrival order
      got_a = untext(p.recv(kWorldCommId, 0, 10));
    }
  });
  EXPECT_EQ(got_a, "ten");
  EXPECT_EQ(got_b, "twenty");
}

TEST(P2P, AnySourceAnyTagWildcards) {
  World w(3);
  std::vector<std::string> got;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 0) {
      for (int i = 0; i < 2; ++i) {
        RecvStatus st;
        got.push_back(untext(p.recv(kWorldCommId, kAnySource, kAnyTag, &st)));
        EXPECT_NE(st.source, kAnySource);
      }
    } else {
      w.eng.sleep(milliseconds(rank));
      p.send(kWorldCommId, 0, static_cast<int>(rank), text("from" + std::to_string(rank)));
    }
  });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "from1");  // rank 1 sent first (deterministic sim)
  EXPECT_EQ(got[1], "from2");
}

TEST(P2P, FifoPerSenderSameTag) {
  World w(2);
  std::vector<int> order;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 0) {
      for (int i = 0; i < 20; ++i) {
        util::Bytes b;
        util::Writer wr(b);
        wr.i32(i);
        p.send(kWorldCommId, 1, 0, std::move(b));
      }
    } else {
      for (int i = 0; i < 20; ++i) {
        auto b = p.recv(kWorldCommId, 0, 0);
        util::Reader r(util::as_bytes_view(b));
        order.push_back(r.i32().value_or(-1));
      }
    }
  });
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(P2P, RendezvousLargeMessage) {
  // Above the eager threshold: RTS/CTS/data handshake.
  World w(2, net::TransportKind::kBipMyrinet, ProcConfig{.eager_threshold = 1024});
  size_t got_size = 0;
  uint8_t got_fill = 0;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 0) {
      p.send(kWorldCommId, 1, 0, blob(100 * 1024, 0x77));
    } else {
      auto b = p.recv(kWorldCommId, 0, 0);
      got_size = b.size();
      got_fill = static_cast<uint8_t>(std::to_integer<int>(b[12345]));
    }
  });
  EXPECT_EQ(got_size, 100u * 1024);
  EXPECT_EQ(got_fill, 0x77);
}

TEST(P2P, RendezvousUnexpectedRts) {
  // RTS arrives before the receive is posted: payload still lands intact.
  World w(2, net::TransportKind::kBipMyrinet, ProcConfig{.eager_threshold = 64});
  size_t got_size = 0;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 0) {
      p.send(kWorldCommId, 1, 3, blob(10'000, 1));
    } else {
      w.eng.sleep(milliseconds(100));
      got_size = p.recv(kWorldCommId, 0, 3).size();
    }
  });
  EXPECT_EQ(got_size, 10'000u);
}

TEST(P2P, NonBlockingSendRecvOverlap) {
  World w(2);
  std::string got1, got2;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 0) {
      Request a = p.isend(kWorldCommId, 1, 1, text("first"));
      Request b = p.isend(kWorldCommId, 1, 2, text("second"));
      (void)p.wait(a);
      (void)p.wait(b);
    } else {
      Request r2 = p.irecv(kWorldCommId, 0, 2);
      Request r1 = p.irecv(kWorldCommId, 0, 1);
      got2 = untext(p.wait(r2));
      got1 = untext(p.wait(r1));
    }
  });
  EXPECT_EQ(got1, "first");
  EXPECT_EQ(got2, "second");
}

TEST(P2P, TestPollsCompletion) {
  World w(2);
  bool was_incomplete = false;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 0) {
      w.eng.sleep(milliseconds(20));
      p.send(kWorldCommId, 1, 0, text("x"));
    } else {
      Request r = p.irecv(kWorldCommId, 0, 0);
      was_incomplete = !p.test(r);
      (void)p.wait(r);
      EXPECT_TRUE(p.test(r));
    }
  });
  EXPECT_TRUE(was_incomplete);
}

TEST(P2P, IprobeSeesQueuedMessage) {
  World w(2);
  bool before = true, after = false;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 0) {
      p.send(kWorldCommId, 1, 9, text("probe-me"));
    } else {
      before = p.iprobe(kWorldCommId, 0, 9);
      w.eng.sleep(milliseconds(10));
      RecvStatus st;
      after = p.iprobe(kWorldCommId, kAnySource, kAnyTag, &st);
      EXPECT_EQ(st.bytes, 8u);
      (void)p.recv(kWorldCommId, 0, 9);
      EXPECT_FALSE(p.iprobe(kWorldCommId, 0, 9));
    }
  });
  EXPECT_FALSE(before);
  EXPECT_TRUE(after);
}

TEST(P2P, PingPongLatencyMatchesModel) {
  World w(2);
  sim::Time rtt = -1;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 0) {
      const sim::Time start = w.eng.now();
      p.send(kWorldCommId, 1, 0, blob(1, 0));
      (void)p.recv(kWorldCommId, 1, 0);
      rtt = w.eng.now() - start;
    } else {
      auto b = p.recv(kWorldCommId, 0, 0);
      p.send(kWorldCommId, 0, 0, std::move(b));
    }
  });
  // Application-level RTT: the MPI frame header adds a few wire bytes on
  // top of the 86 us model floor.
  EXPECT_GE(rtt, sim::microseconds(86));
  EXPECT_LE(rtt, sim::microseconds(92));
}

// --------------------------------------------------------- collectives ----

class CollectiveSizes : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CollectiveSizes, BarrierSynchronizes) {
  const uint32_t n = GetParam();
  World w(n);
  std::vector<sim::Time> after(n);
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm comm = Comm::world(p);
    w.eng.sleep(milliseconds(rank * 10));  // staggered arrival
    comm.barrier();
    after[rank] = w.eng.now();
  });
  const sim::Time slowest_arrival = milliseconds((n - 1) * 10);
  for (uint32_t i = 0; i < n; ++i) EXPECT_GE(after[i], slowest_arrival);
}

TEST_P(CollectiveSizes, BcastFromEveryRoot) {
  const uint32_t n = GetParam();
  for (uint32_t root = 0; root < n; ++root) {
    World w(n);
    std::vector<std::string> got(n);
    w.run_app([&, root](uint32_t rank, Proc& p) {
      Comm comm = Comm::world(p);
      util::Bytes data = rank == root ? text("payload-" + std::to_string(root)) : util::Bytes{};
      got[rank] = untext(comm.bcast(static_cast<int>(root), std::move(data)));
    });
    for (uint32_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], "payload-" + std::to_string(root)) << "n=" << n << " root=" << root;
    }
  }
}

TEST_P(CollectiveSizes, GatherCollectsInRankOrder) {
  const uint32_t n = GetParam();
  World w(n);
  std::vector<std::string> at_root;
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm comm = Comm::world(p);
    auto all = comm.gather(0, text("r" + std::to_string(rank)));
    if (rank == 0) {
      for (const auto& b : all) at_root.push_back(untext(b));
    }
  });
  ASSERT_EQ(at_root.size(), n);
  for (uint32_t i = 0; i < n; ++i) EXPECT_EQ(at_root[i], "r" + std::to_string(i));
}

TEST_P(CollectiveSizes, ScatterDistributes) {
  const uint32_t n = GetParam();
  World w(n);
  std::vector<std::string> got(n);
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm comm = Comm::world(p);
    std::vector<util::Bytes> parts;
    if (rank == 0) {
      for (uint32_t i = 0; i < n; ++i) parts.push_back(text("part" + std::to_string(i)));
    }
    got[rank] = untext(comm.scatter(0, std::move(parts)));
  });
  for (uint32_t i = 0; i < n; ++i) EXPECT_EQ(got[i], "part" + std::to_string(i));
}

TEST_P(CollectiveSizes, AllgatherEverywhere) {
  const uint32_t n = GetParam();
  World w(n);
  std::vector<std::vector<std::string>> got(n);
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm comm = Comm::world(p);
    auto all = comm.allgather(text(std::to_string(rank * rank)));
    for (const auto& b : all) got[rank].push_back(untext(b));
  });
  for (uint32_t i = 0; i < n; ++i) {
    ASSERT_EQ(got[i].size(), n);
    for (uint32_t k = 0; k < n; ++k) EXPECT_EQ(got[i][k], std::to_string(k * k));
  }
}

TEST_P(CollectiveSizes, AlltoallTransposes) {
  const uint32_t n = GetParam();
  World w(n);
  std::vector<std::vector<std::string>> got(n);
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm comm = Comm::world(p);
    std::vector<util::Bytes> parts;
    for (uint32_t to = 0; to < n; ++to) {
      parts.push_back(text(std::to_string(rank) + "->" + std::to_string(to)));
    }
    auto mine = comm.alltoall(std::move(parts));
    for (const auto& b : mine) got[rank].push_back(untext(b));
  });
  for (uint32_t me = 0; me < n; ++me) {
    ASSERT_EQ(got[me].size(), n);
    for (uint32_t from = 0; from < n; ++from) {
      EXPECT_EQ(got[me][from], std::to_string(from) + "->" + std::to_string(me));
    }
  }
}

TEST_P(CollectiveSizes, AllreduceSumAndMax) {
  const uint32_t n = GetParam();
  World w(n);
  std::vector<int64_t> sums(n), maxes(n);
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm comm = Comm::world(p);
    auto s = comm.allreduce(std::vector<int64_t>{static_cast<int64_t>(rank + 1)},
                            ReduceOp::kSum);
    auto m = comm.allreduce(std::vector<int64_t>{static_cast<int64_t>(rank * 3)},
                            ReduceOp::kMax);
    sums[rank] = s[0];
    maxes[rank] = m[0];
  });
  const int64_t expect_sum = static_cast<int64_t>(n) * (n + 1) / 2;
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(sums[i], expect_sum);
    EXPECT_EQ(maxes[i], 3 * (static_cast<int64_t>(n) - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes, ::testing::Values(1u, 2u, 3u, 4u, 7u, 8u));

TEST(Collectives, ReduceDoubleSum) {
  World w(4);
  std::vector<double> at_root;
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm comm = Comm::world(p);
    auto r = comm.reduce(0, std::vector<double>{0.5 * rank, 1.0}, ReduceOp::kSum);
    if (rank == 0) at_root = r;
  });
  ASSERT_EQ(at_root.size(), 2u);
  EXPECT_DOUBLE_EQ(at_root[0], 0.5 * (0 + 1 + 2 + 3));
  EXPECT_DOUBLE_EQ(at_root[1], 4.0);
}

TEST(Collectives, ProdReduction) {
  World w(3);
  std::vector<int64_t> result(3);
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm comm = Comm::world(p);
    result[rank] = comm.allreduce(std::vector<int64_t>{static_cast<int64_t>(rank + 2)},
                                  ReduceOp::kProd)[0];
  });
  for (auto v : result) EXPECT_EQ(v, 2 * 3 * 4);
}

// ------------------------------------------------------- communicators ----

TEST(Comms, SplitEvenOdd) {
  World w(6);
  std::vector<int> sub_rank(6), sub_size(6);
  std::vector<int64_t> sub_sum(6);
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm world = Comm::world(p);
    Comm sub = world.split(static_cast<int>(rank % 2), static_cast<int>(rank));
    sub_rank[rank] = sub.rank();
    sub_size[rank] = sub.size();
    sub_sum[rank] = sub.allreduce(std::vector<int64_t>{static_cast<int64_t>(rank)},
                                  ReduceOp::kSum)[0];
  });
  for (uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(sub_size[i], 3);
    EXPECT_EQ(sub_rank[i], static_cast<int>(i / 2));
    EXPECT_EQ(sub_sum[i], i % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
  }
}

TEST(Comms, SplitNegativeColorExcluded) {
  World w(4);
  std::vector<int> sub_size(4, -1);
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm world = Comm::world(p);
    Comm sub = world.split(rank == 3 ? -1 : 0, static_cast<int>(rank));
    sub_size[rank] = sub.size();
    if (rank != 3) {
      auto s = sub.allreduce(std::vector<int64_t>{1}, ReduceOp::kSum);
      EXPECT_EQ(s[0], 3);
    }
  });
  EXPECT_EQ(sub_size[3], 0);
  EXPECT_EQ(sub_size[0], 3);
}

TEST(Comms, MessagesOnSubCommDontLeak) {
  World w(4);
  std::string got;
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm world = Comm::world(p);
    Comm sub = world.split(static_cast<int>(rank % 2), static_cast<int>(rank));
    if (rank == 0) sub.send(1, 5, text("even-only"));     // to world rank 2
    if (rank == 2) got = untext(sub.recv(0, 5));          // from world rank 0
    world.barrier();
    // Rank 1 (odd subgroup) saw nothing on its sub communicator.
    if (rank == 1) {
      EXPECT_FALSE(p.iprobe(sub.id(), kAnySource, kAnyTag));
    }
  });
  EXPECT_EQ(got, "even-only");
}

TEST(Comms, DupIsIndependentChannel) {
  World w(2);
  std::string a, b;
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm world = Comm::world(p);
    Comm copy = world.dup();
    EXPECT_NE(copy.id(), world.id());
    EXPECT_EQ(copy.size(), world.size());
    if (rank == 0) {
      world.send(1, 0, text("on-world"));
      copy.send(1, 0, text("on-dup"));
    } else {
      b = untext(copy.recv(0, 0));
      a = untext(world.recv(0, 0));
    }
  });
  EXPECT_EQ(a, "on-world");
  EXPECT_EQ(b, "on-dup");
}

// ----------------------------------------------- scan/sendrecv/datatype ----

TEST(Collectives, InclusiveScanPrefixSums) {
  World w(5);
  std::vector<int64_t> results(5);
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm comm = Comm::world(p);
    results[rank] = comm.scan(std::vector<int64_t>{static_cast<int64_t>(rank + 1)},
                              ReduceOp::kSum)[0];
  });
  // rank r gets 1+2+...+(r+1)
  for (uint32_t r = 0; r < 5; ++r) {
    EXPECT_EQ(results[r], static_cast<int64_t>((r + 1) * (r + 2) / 2));
  }
}

TEST(Collectives, ExclusiveScan) {
  World w(4);
  std::vector<int64_t> results(4);
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm comm = Comm::world(p);
    results[rank] = comm.exscan(std::vector<int64_t>{static_cast<int64_t>(rank + 1)},
                                ReduceOp::kSum)[0];
  });
  EXPECT_EQ(results[0], 1);  // rank 0: input unchanged by convention
  EXPECT_EQ(results[1], 1);
  EXPECT_EQ(results[2], 3);
  EXPECT_EQ(results[3], 6);
}

TEST(Collectives, ScanMaxOperator) {
  World w(4);
  std::vector<int64_t> results(4);
  const int64_t inputs[4] = {5, 2, 9, 1};
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm comm = Comm::world(p);
    results[rank] = comm.scan(std::vector<int64_t>{inputs[rank]}, ReduceOp::kMax)[0];
  });
  EXPECT_EQ(results[0], 5);
  EXPECT_EQ(results[1], 5);
  EXPECT_EQ(results[2], 9);
  EXPECT_EQ(results[3], 9);
}

TEST(P2P, SendrecvRingExchangeNoDeadlock) {
  // Every rank simultaneously sendrecv's with both neighbours — the classic
  // pattern that deadlocks with naive blocking sends.
  World w(5);
  std::vector<std::string> got(5);
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm comm = Comm::world(p);
    const int right = static_cast<int>((rank + 1) % 5);
    const int left = static_cast<int>((rank + 4) % 5);
    auto reply = comm.sendrecv(right, 1, text("from" + std::to_string(rank)), left, 1);
    got[rank] = untext(reply);
  });
  for (uint32_t r = 0; r < 5; ++r) {
    EXPECT_EQ(got[r], "from" + std::to_string((r + 4) % 5));
  }
}

TEST(Datatype, ContiguousPackUnpackRoundtrip) {
  auto d = Datatype::contiguous(10, 8);
  util::Bytes buffer(80);
  for (size_t i = 0; i < buffer.size(); ++i) buffer[i] = static_cast<std::byte>(i);
  auto packed = d.pack(util::as_bytes_view(buffer));
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed.value(), buffer);
  util::Bytes restored(80);
  ASSERT_TRUE(d.unpack(util::as_bytes_view(packed.value()), restored).ok());
  EXPECT_EQ(restored, buffer);
}

TEST(Datatype, VectorExtractsMatrixColumn) {
  // A 4x6 matrix of 4-byte elements; a column is a vector type with
  // block=1, stride=6.
  constexpr size_t kRows = 4, kCols = 6, kElem = 4;
  util::Bytes matrix(kRows * kCols * kElem);
  for (size_t i = 0; i < matrix.size(); ++i) matrix[i] = static_cast<std::byte>(i % 251);
  auto column = Datatype::vector(kRows, 1, kCols, kElem);
  EXPECT_EQ(column.packed_bytes(), kRows * kElem);

  // Pack column 2 by offsetting the buffer view.
  auto packed = column.pack(std::span<const std::byte>(matrix.data() + 2 * kElem,
                                                       matrix.size() - 2 * kElem));
  ASSERT_TRUE(packed.ok());
  for (size_t row = 0; row < kRows; ++row) {
    for (size_t b = 0; b < kElem; ++b) {
      EXPECT_EQ(packed.value()[row * kElem + b], matrix[(row * kCols + 2) * kElem + b]);
    }
  }
  // Scatter it into a fresh matrix; only the column cells change.
  util::Bytes target(matrix.size(), std::byte{0});
  ASSERT_TRUE(column
                  .unpack(util::as_bytes_view(packed.value()),
                          std::span<std::byte>(target.data() + 2 * kElem,
                                               target.size() - 2 * kElem))
                  .ok());
  for (size_t row = 0; row < kRows; ++row) {
    for (size_t b = 0; b < kElem; ++b) {
      EXPECT_EQ(target[(row * kCols + 2) * kElem + b], matrix[(row * kCols + 2) * kElem + b]);
    }
  }
}

TEST(Datatype, IndexedBlocks) {
  auto d = Datatype::indexed({{0, 4}, {10, 2}, {20, 6}});
  EXPECT_EQ(d.packed_bytes(), 12u);
  EXPECT_EQ(d.extent(), 26u);
  util::Bytes buf(30);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::byte>(i);
  auto packed = d.pack(util::as_bytes_view(buf));
  ASSERT_TRUE(packed.ok());
  ASSERT_EQ(packed.value().size(), 12u);
  EXPECT_EQ(std::to_integer<int>(packed.value()[4]), 10);
  EXPECT_EQ(std::to_integer<int>(packed.value()[6]), 20);
}

// Pins the packed_bytes/extent math when layouts contain zero-length
// blocks: they contribute no packed bytes and no extent beyond their
// offset, and pack/unpack skip them entirely.
TEST(Datatype, ZeroLengthBlocksContributeNothing) {
  auto d = Datatype::indexed({{0, 4}, {8, 0}, {12, 4}, {40, 0}});
  EXPECT_EQ(d.packed_bytes(), 8u);
  EXPECT_EQ(d.extent(), 40u);  // extent still covers the empty block's offset
  EXPECT_FALSE(d.is_contiguous());
  util::Bytes buf(48);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::byte>(i);
  auto packed = d.pack(util::as_bytes_view(buf));
  ASSERT_TRUE(packed.ok());
  ASSERT_EQ(packed.value().size(), 8u);
  EXPECT_EQ(std::to_integer<int>(packed.value()[3]), 3);
  EXPECT_EQ(std::to_integer<int>(packed.value()[4]), 12);

  // A vector of zero-element blocks packs nothing but keeps its stride extent.
  auto v = Datatype::vector(3, 0, 5, 4);
  EXPECT_EQ(v.packed_bytes(), 0u);
  EXPECT_EQ(v.extent(), 2u * 5 * 4);
  util::Bytes vbuf(64, std::byte{0xee});
  auto vpacked = v.pack(util::as_bytes_view(vbuf));
  ASSERT_TRUE(vpacked.ok());
  EXPECT_TRUE(vpacked.value().empty());
  EXPECT_TRUE(v.unpack(vpacked.value(), vbuf).ok());

  auto empty = Datatype::indexed({{16, 0}});
  EXPECT_EQ(empty.packed_bytes(), 0u);
  EXPECT_TRUE(empty.is_contiguous());  // zero runs collapse to the trivial plan
}

// Layouts whose blocks touch collapse to a single bulk copy.
TEST(Datatype, ContiguousFastPathDetection) {
  EXPECT_TRUE(Datatype::contiguous(16, 4).is_contiguous());
  EXPECT_TRUE(Datatype::contiguous(0, 4).is_contiguous());
  // stride == block: adjacent blocks merge into one run.
  EXPECT_TRUE(Datatype::vector(8, 3, 3, 4).is_contiguous());
  EXPECT_FALSE(Datatype::vector(8, 1, 3, 4).is_contiguous());
  // indexed blocks that abut merge too.
  EXPECT_TRUE(Datatype::indexed({{0, 4}, {4, 4}, {8, 8}}).is_contiguous());
  EXPECT_FALSE(Datatype::indexed({{0, 4}, {5, 4}}).is_contiguous());

  auto merged = Datatype::vector(4, 2, 2, 8);  // 4 blocks of 16B, stride 16B
  EXPECT_EQ(merged.packed_bytes(), 64u);
  util::Bytes buf(64);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::byte>(i);
  auto packed = merged.pack(util::as_bytes_view(buf));
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed.value(), buf);  // one bulk copy of the whole buffer
}

TEST(Datatype, ErrorsOnShortBuffers) {
  auto d = Datatype::contiguous(4, 8);
  util::Bytes small(16);
  EXPECT_FALSE(d.pack(util::as_bytes_view(small)).ok());
  util::Bytes msg(32);
  EXPECT_FALSE(d.unpack(util::as_bytes_view(msg), small).ok());
  util::Bytes wrong(31);
  util::Bytes big(64);
  EXPECT_FALSE(d.unpack(util::as_bytes_view(wrong), big).ok());
}

TEST(Datatype, TypedScalarCodecs) {
  std::vector<int64_t> i64s = {-1, 0, INT64_MAX, INT64_MIN};
  EXPECT_EQ(decode_i64s(encode_i64s(i64s)), i64s);
  std::vector<double> f64s = {0.0, -1.5, 3.14159};
  EXPECT_EQ(decode_f64s(encode_f64s(f64s)), f64s);
  std::vector<int32_t> i32s = {INT32_MIN, -7, INT32_MAX};
  EXPECT_EQ(decode_i32s(encode_i32s(i32s)), i32s);
}

// Datatype transfer end to end: pack a strided column, ship it, unpack.
TEST(Datatype, StridedColumnOverTheWire) {
  World w(2);
  constexpr size_t kRows = 8, kCols = 5;
  std::vector<int32_t> received(kRows, 0);
  w.run_app([&](uint32_t rank, Proc& p) {
    auto column = Datatype::vector(kRows, 1, kCols, sizeof(int32_t));
    if (rank == 0) {
      std::vector<int32_t> matrix(kRows * kCols);
      for (size_t i = 0; i < matrix.size(); ++i) matrix[i] = static_cast<int32_t>(i);
      auto packed = column.pack(std::as_bytes(std::span<const int32_t>(
          matrix.data() + 3, matrix.size() - 3)));  // column 3
      p.send(kWorldCommId, 1, 0, std::move(packed).take());
    } else {
      auto msg = p.recv(kWorldCommId, 0, 0);
      std::vector<int32_t> buffer(kRows * kCols, 0);
      ASSERT_TRUE(column
                      .unpack(util::as_bytes_view(msg),
                              std::as_writable_bytes(std::span<int32_t>(
                                  buffer.data() + 3, buffer.size() - 3)))
                      .ok());
      for (size_t r = 0; r < kRows; ++r) received[r] = buffer[r * kCols + 3];
    }
  });
  for (size_t r = 0; r < kRows; ++r) {
    EXPECT_EQ(received[r], static_cast<int32_t>(r * kCols + 3));
  }
}

TEST(Comms, CollectivesOnSplitCommunicators) {
  // Full collective suite on a sub-communicator: bcast, gather, barrier.
  World w(6);
  std::vector<std::string> got(6);
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm world = Comm::world(p);
    Comm sub = world.split(static_cast<int>(rank % 2), static_cast<int>(rank));
    sub.barrier();
    util::Bytes data =
        sub.rank() == 0 ? text("group" + std::to_string(rank % 2)) : util::Bytes{};
    got[rank] = untext(sub.bcast(0, std::move(data)));
    auto all = sub.gather(0, text("r" + std::to_string(rank)));
    if (sub.rank() == 0) {
      EXPECT_EQ(all.size(), 3u);
    }
  });
  for (uint32_t r = 0; r < 6; ++r) {
    EXPECT_EQ(got[r], "group" + std::to_string(r % 2));
  }
}

TEST(Comms, NestedSplits) {
  // Split the world, then split the halves again: 4 disjoint pairs out of 8.
  World w(8);
  std::vector<int64_t> sums(8);
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm world = Comm::world(p);
    Comm half = world.split(static_cast<int>(rank / 4), static_cast<int>(rank));
    Comm pair = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(pair.size(), 2);
    sums[rank] = pair.allreduce(std::vector<int64_t>{static_cast<int64_t>(rank)},
                                ReduceOp::kSum)[0];
  });
  // Pairs are (0,1), (2,3), (4,5), (6,7).
  EXPECT_EQ(sums[0], 1);
  EXPECT_EQ(sums[1], 1);
  EXPECT_EQ(sums[2], 5);
  EXPECT_EQ(sums[5], 9);
  EXPECT_EQ(sums[7], 13);
}

TEST(Comms, ScanOnSubCommunicator) {
  World w(6);
  std::vector<int64_t> results(6);
  w.run_app([&](uint32_t rank, Proc& p) {
    Comm world = Comm::world(p);
    Comm sub = world.split(static_cast<int>(rank % 2), static_cast<int>(rank));
    results[rank] = sub.scan(std::vector<int64_t>{1}, ReduceOp::kSum)[0];
  });
  // Within each parity class, scan counts 1..3.
  EXPECT_EQ(results[0], 1);
  EXPECT_EQ(results[2], 2);
  EXPECT_EQ(results[4], 3);
  EXPECT_EQ(results[1], 1);
  EXPECT_EQ(results[3], 2);
  EXPECT_EQ(results[5], 3);
}

TEST(P2P, WaitallCompletesMixedRequests) {
  World w(3);
  int done_sets = 0;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 0) {
      std::vector<Request> reqs;
      reqs.push_back(p.isend(kWorldCommId, 1, 0, text("a")));
      reqs.push_back(p.isend(kWorldCommId, 2, 0, text("b")));
      reqs.push_back(p.irecv(kWorldCommId, 1, 1));
      reqs.push_back(p.irecv(kWorldCommId, 2, 1));
      p.waitall(reqs);
      for (const auto& r : reqs) EXPECT_TRUE(p.test(r));
      ++done_sets;
    } else {
      (void)p.recv(kWorldCommId, 0, 0);
      p.send(kWorldCommId, 0, 1, text("reply"));
    }
  });
  EXPECT_EQ(done_sets, 1);
}

TEST(P2P, WaitanyReturnsFirstCompleted) {
  World w(3);
  size_t first = 99;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 0) {
      std::vector<Request> reqs;
      reqs.push_back(p.irecv(kWorldCommId, 1, 0));  // arrives late
      reqs.push_back(p.irecv(kWorldCommId, 2, 0));  // arrives first
      first = p.waitany(reqs);
    } else if (rank == 1) {
      w.eng.sleep(milliseconds(50));
      p.send(kWorldCommId, 0, 0, text("slow"));
    } else {
      p.send(kWorldCommId, 0, 0, text("fast"));
    }
  });
  EXPECT_EQ(first, 1u);
}

// --------------------------------------------------------- C/R hooks ----

TEST(CrHooks, FreezeParksIncomingInUnexpectedQueue) {
  World w(2);
  std::string got;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 1) {
      p.freeze();
      w.eng.sleep(milliseconds(10));  // message from 0 arrives while frozen
      EXPECT_EQ(p.unexpected_depth(), 1u);
      p.thaw();
      got = untext(p.recv(kWorldCommId, 0, 0));
    } else {
      w.eng.sleep(milliseconds(1));
      p.send(kWorldCommId, 1, 0, text("during-freeze"));
    }
  });
  EXPECT_EQ(got, "during-freeze");
}

TEST(CrHooks, FreezeCompletesInFlightRendezvous) {
  // Sender starts a big send; receiver freezes before posting the receive.
  // The freeze auto-CTS path must drain the transfer so the sender's freeze
  // can complete (stop-and-sync would otherwise deadlock).
  World w(2, net::TransportKind::kBipMyrinet, ProcConfig{.eager_threshold = 512});
  bool sender_froze = false;
  size_t got = 0;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 0) {
      p.send(kWorldCommId, 1, 0, blob(50'000, 9));
      p.freeze();
      sender_froze = true;
      p.thaw();
    } else {
      w.eng.sleep(milliseconds(1));
      p.freeze();
      w.eng.sleep(milliseconds(50));  // transfer drains while frozen
      EXPECT_EQ(p.unexpected_depth(), 1u);
      p.thaw();
      got = p.recv(kWorldCommId, 0, 0).size();
    }
  });
  EXPECT_TRUE(sender_froze);
  EXPECT_EQ(got, 50'000u);
}

TEST(CrHooks, ChannelStateRoundtrip) {
  World w(2);
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 0) {
      p.send(kWorldCommId, 1, 4, text("in-transit-1"));
      p.send(kWorldCommId, 1, 5, text("in-transit-2"));
    } else {
      p.freeze();
      w.eng.sleep(milliseconds(10));
      auto blob_state = p.capture_channel_state();
      // Simulate restart: wipe and restore.
      p.restore_channel_state(blob_state);
      p.thaw();
      EXPECT_EQ(untext(p.recv(kWorldCommId, 0, 4)), "in-transit-1");
      EXPECT_EQ(untext(p.recv(kWorldCommId, 0, 5)), "in-transit-2");
    }
  });
}

TEST(CrHooks, MarkersReachControlHandler) {
  World w(3);
  std::vector<int> markers_seen(3, 0);
  w.run_app([&](uint32_t rank, Proc& p) {
    p.set_control_handler([&markers_seen, rank](const Frame& f) {
      if (f.kind == FrameKind::kFlushMarker) ++markers_seen[rank];
    });
    if (rank == 0) p.send_marker(FrameKind::kFlushMarker, kWorldCommId);
    w.eng.sleep(milliseconds(10));
  });
  EXPECT_EQ(markers_seen[0], 0);  // not sent to self
  EXPECT_EQ(markers_seen[1], 1);
  EXPECT_EQ(markers_seen[2], 1);
}

TEST(CrHooks, DependencyPiggybackTracksIntervals) {
  World w(2);
  ckpt::DependencyTracker t0(0), t1(1);
  w.run_app([&](uint32_t rank, Proc& p) {
    p.set_dependency_tracker(rank == 0 ? &t0 : &t1);
    if (rank == 0) {
      p.send(kWorldCommId, 1, 0, text("a"));       // sent in interval 0
      (void)t0.cut_checkpoint();                    // now interval 1
      p.send(kWorldCommId, 1, 0, text("b"));       // sent in interval 1
    } else {
      (void)p.recv(kWorldCommId, 0, 0);
      (void)p.recv(kWorldCommId, 0, 0);
      auto [idx, deps] = t1.cut_checkpoint();
      EXPECT_EQ(idx, 1u);
      ASSERT_EQ(deps.size(), 2u);
      EXPECT_EQ(deps[0], (ckpt::IntervalId{0, 0}));
      EXPECT_EQ(deps[1], (ckpt::IntervalId{0, 1}));
    }
  });
}

TEST(CrHooks, RecvTapObservesArrivals) {
  World w(2);
  int tapped = 0;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 1) {
      p.set_recv_tap([&](const Envelope&) { ++tapped; });
      (void)p.recv(kWorldCommId, 0, 0);
      (void)p.recv(kWorldCommId, 0, 1);
    } else {
      p.send(kWorldCommId, 1, 0, text("x"));
      p.send(kWorldCommId, 1, 1, text("y"));
    }
  });
  EXPECT_EQ(tapped, 2);
}

TEST(CrHooks, InjectUnexpectedReplaysChannelState) {
  World w(2);
  std::string got;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 1) {
      Envelope env;
      env.comm = kWorldCommId;
      env.src = 0;
      env.tag = 3;
      env.data = text("replayed");
      p.inject_unexpected(std::move(env));
      got = untext(p.recv(kWorldCommId, 0, 3));
    }
  });
  EXPECT_EQ(got, "replayed");
}

TEST(CrHooks, CrashMidTransferLosesMessageButNotSanity) {
  World w(2);
  bool receiver_done = false;
  w.run_app([&](uint32_t rank, Proc& p) {
    if (rank == 0) {
      p.send(kWorldCommId, 1, 0, text("doomed"));
    } else {
      auto req = p.irecv(kWorldCommId, 0, 0);
      w.eng.sleep(milliseconds(5));
      receiver_done = p.test(req);
    }
  });
  // Crash the sender right after send: the message was already on the wire
  // in this schedule, so it still arrives — but a crash *before* delivery
  // must simply drop it. Either way nothing hangs or crashes.
  World w2(2);
  bool got_anything = false;
  w2.net.host(1)->spawn("app", [&] {
    auto req = w2.procs[1]->irecv(kWorldCommId, 0, 0);
    w2.eng.sleep(milliseconds(50));
    got_anything = w2.procs[1]->test(req);
  });
  w2.eng.schedule(sim::microseconds(1), [&] { w2.net.crash_host(0); });
  w2.eng.run_for(seconds(1));
  EXPECT_FALSE(got_anything);
  EXPECT_TRUE(receiver_done);
}

// ------------------------------------------- simulated-time invariance ----

TEST(Determinism, PingRoundTripSimTimeMatchesGolden) {
  // Pins the Figure 5 ping's total simulated time to constants captured
  // from the original revision. Host-side optimizations (zero-copy payload
  // plumbing, hashed checkpoint deltas) must never move simulated time: a
  // failure here means a wire size, a charged cost or the event order
  // changed, not that the code got slower or faster on the host.
  struct Golden {
    net::TransportKind kind;
    size_t bytes;
    sim::Duration total_ns;
  };
  const Golden golden[] = {
      {net::TransportKind::kTcpIp, 1, 5596360},
      {net::TransportKind::kTcpIp, 4096, 13041800},
      {net::TransportKind::kTcpIp, 65536, 135939980},
      {net::TransportKind::kBipMyrinet, 1, 874000},
      {net::TransportKind::kBipMyrinet, 4096, 2239000},
      {net::TransportKind::kBipMyrinet, 65536, 24466320},
  };
  for (const auto& g : golden) {
    sim::Engine eng;
    net::Network net(eng);
    auto h0 = net.add_host("a");
    auto h1 = net.add_host("b");
    Proc p0(net, *h0, g.kind);
    Proc p1(net, *h1, g.kind);
    p0.configure_world(0, {p0.addr(), p1.addr()});
    p1.configure_world(1, {p0.addr(), p1.addr()});
    sim::Duration total = 0;
    constexpr int kReps = 10;
    h1->spawn("ponger", [&] {
      for (int i = 0; i < kReps; ++i) {
        auto msg = p1.recv(kWorldCommId, 0, 0);
        p1.send(kWorldCommId, 0, 0, std::move(msg));
      }
    });
    h0->spawn("pinger", [&] {
      for (int i = 0; i < kReps; ++i) {
        const sim::Time start = eng.now();
        p0.send(kWorldCommId, 1, 0, util::Bytes(g.bytes, std::byte{0x5a}));
        (void)p0.recv(kWorldCommId, 1, 0);
        total += eng.now() - start;
      }
    });
    eng.run();
    EXPECT_EQ(total, g.total_ns)
        << (g.kind == net::TransportKind::kTcpIp ? "tcp" : "bip") << " " << g.bytes << " bytes";
  }
}

}  // namespace
}  // namespace starfish::mpi
