#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "net/faults.hpp"
#include "net/model_params.hpp"
#include "net/network.hpp"
#include "net/vni.hpp"
#include "sim/engine.hpp"

namespace starfish::net {
namespace {

using sim::microseconds;
using sim::milliseconds;
using sim::seconds;

util::Bytes make_payload(size_t n, uint8_t fill = 0x5a) {
  return util::Bytes(n, std::byte{fill});
}

struct Fixture {
  sim::Engine eng;
  Network net{eng};
  Fixture(size_t hosts = 4) {
    for (size_t i = 0; i < hosts; ++i) net.add_host("node" + std::to_string(i));
  }
};

// ---------------------------------------------------------------- Model ----

TEST(Model, OneWayFixedCostsMatchPaperAnchors) {
  // Paper Figure 5: 1-byte RTT is 552 us over TCP/IP and 86 us over BIP.
  EXPECT_EQ(2 * tcp_ip_model().one_way_fixed(), microseconds(552));
  EXPECT_EQ(2 * bip_myrinet_model().one_way_fixed(), microseconds(86));
}

TEST(Model, KernelCostsZeroForUserLevelBip) {
  EXPECT_EQ(bip_myrinet_model().kernel_send, 0);
  EXPECT_EQ(bip_myrinet_model().kernel_recv, 0);
  EXPECT_GT(tcp_ip_model().kernel_send, 0);
  EXPECT_GT(tcp_ip_model().kernel_recv, 0);
}

TEST(Model, WireTimeLinearInSize) {
  const auto& m = bip_myrinet_model();
  const auto base = m.wire_time(0);
  EXPECT_EQ(m.wire_time(60'000'000) - base, seconds(1.0));
  EXPECT_EQ(m.wire_time(120'000'000) - base, seconds(2.0));
}

// ------------------------------------------------------------- Datagram ----

TEST(Datagram, DeliversAfterModelLatency) {
  Fixture f;
  auto a = f.net.bind(0, 100, TransportKind::kBipMyrinet);
  auto b = f.net.bind(1, 100, TransportKind::kBipMyrinet);
  sim::Time arrival = -1;
  f.eng.spawn("rx", [&] {
    auto r = b->recv();
    ASSERT_TRUE(r.ok());
    arrival = f.eng.now();
    EXPECT_EQ(r.value->src, (NetAddr{0, 100}));
    EXPECT_EQ(r.value->payload.size(), 1u);
  });
  f.eng.spawn("tx", [&] { a->send({1, 100}, make_payload(1)); });
  f.eng.run();
  // 43 us fixed one-way cost plus the sub-microsecond 1-byte wire term.
  EXPECT_NEAR(static_cast<double>(arrival), static_cast<double>(microseconds(43)), 100.0);
}

TEST(Datagram, TcpSlowerThanBip) {
  Fixture f;
  auto a_tcp = f.net.bind(0, 1, TransportKind::kTcpIp);
  auto b_tcp = f.net.bind(1, 1, TransportKind::kTcpIp);
  auto a_bip = f.net.bind(0, 2, TransportKind::kBipMyrinet);
  auto b_bip = f.net.bind(1, 2, TransportKind::kBipMyrinet);
  sim::Time tcp_at = -1, bip_at = -1;
  f.eng.spawn("rx-tcp", [&] {
    (void)b_tcp->recv();
    tcp_at = f.eng.now();
  });
  f.eng.spawn("rx-bip", [&] {
    (void)b_bip->recv();
    bip_at = f.eng.now();
  });
  f.eng.spawn("tx", [&] {
    a_tcp->send({1, 1}, make_payload(1000));
    a_bip->send({1, 2}, make_payload(1000));
  });
  f.eng.run();
  EXPECT_GT(tcp_at, bip_at);
}

TEST(Datagram, FifoPerSenderPair) {
  Fixture f;
  auto a = f.net.bind(0, 1, TransportKind::kTcpIp);
  auto b = f.net.bind(1, 1, TransportKind::kTcpIp);
  std::vector<uint8_t> order;
  f.eng.spawn("rx", [&] {
    for (int i = 0; i < 50; ++i) {
      auto r = b->recv();
      ASSERT_TRUE(r.ok());
      order.push_back(static_cast<uint8_t>(std::to_integer<int>(r.value->payload[0])));
    }
  });
  f.eng.spawn("tx", [&] {
    for (int i = 0; i < 50; ++i) a->send({1, 1}, make_payload(8, static_cast<uint8_t>(i)));
  });
  f.eng.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Datagram, DropsWhenDestinationUnbound) {
  Fixture f;
  auto a = f.net.bind(0, 1, TransportKind::kTcpIp);
  EXPECT_TRUE(a->send({1, 99}, make_payload(4)));  // goes on the wire...
  f.eng.run();                                     // ...and vanishes
  EXPECT_EQ(f.net.packets_sent(), 1u);
}

TEST(Datagram, DropsInFlightToCrashedHost) {
  Fixture f;
  auto a = f.net.bind(0, 1, TransportKind::kTcpIp);
  auto b = f.net.bind(1, 1, TransportKind::kTcpIp);
  bool delivered = false;
  f.eng.spawn("rx", [&] {
    auto r = b->recv();
    delivered = r.ok();
  });
  f.eng.spawn("tx", [&] { a->send({1, 1}, make_payload(10)); });
  // Crash before the ~276 us delivery.
  f.eng.schedule(microseconds(100), [&] { f.net.crash_host(1); });
  f.eng.run();
  EXPECT_FALSE(delivered);
}

TEST(Datagram, SendFromDeadHostFails) {
  Fixture f;
  auto a = f.net.bind(0, 1, TransportKind::kTcpIp);
  f.net.crash_host(0);
  EXPECT_FALSE(a->send({1, 1}, make_payload(1)));
}

TEST(Datagram, BindAutoAssignsDistinctPorts) {
  Fixture f;
  auto a = f.net.bind_auto(0, TransportKind::kTcpIp);
  auto b = f.net.bind_auto(0, TransportKind::kTcpIp);
  EXPECT_NE(a->addr().port, b->addr().port);
}

TEST(Datagram, LoopbackFastPath) {
  // Same-host traffic bypasses the wire model: fixed 30 us + memcpy rate.
  Fixture f;
  auto a = f.net.bind(0, 1, TransportKind::kTcpIp);
  auto b = f.net.bind(0, 2, TransportKind::kTcpIp);
  sim::Time arrival = -1;
  f.eng.spawn("rx", [&] {
    (void)b->recv();
    arrival = f.eng.now();
  });
  f.eng.spawn("tx", [&] { a->send({0, 2}, make_payload(1)); });
  f.eng.run();
  EXPECT_LT(arrival, microseconds(40));  // far below the 276 us TCP one-way
  EXPECT_GE(arrival, microseconds(30));
}

TEST(Datagram, LoopbackStillFifoWithRemoteTraffic) {
  Fixture f;
  auto rx = f.net.bind(0, 9, TransportKind::kTcpIp);
  auto local = f.net.bind(0, 8, TransportKind::kTcpIp);
  auto remote = f.net.bind(1, 8, TransportKind::kTcpIp);
  std::vector<int> order;
  f.eng.spawn("rx", [&] {
    for (int i = 0; i < 2; ++i) {
      auto r = rx->recv();
      ASSERT_TRUE(r.ok());
      order.push_back(std::to_integer<int>(r.value->payload[0]));
    }
  });
  f.eng.spawn("tx", [&] {
    remote->send({0, 9}, make_payload(4, 1));  // remote: ~276 us
    local->send({0, 9}, make_payload(4, 2));   // loopback: ~30 us, overtakes
  });
  f.eng.run();
  ASSERT_EQ(order.size(), 2u);
  // Different sources: the loopback message legitimately arrives first.
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
}

// ------------------------------------------------------------ Streams ----

TEST(Stream, ConnectAcceptExchange) {
  Fixture f;
  auto acc = f.net.listen(0, 7000, TransportKind::kTcpIp);
  std::string got_at_server, got_at_client;
  f.eng.spawn("server", [&] {
    auto c = acc->accept();
    ASSERT_TRUE(c.ok());
    auto conn = *c.value;
    auto m = conn->recv();
    ASSERT_TRUE(m.ok());
    got_at_server.assign(reinterpret_cast<const char*>(m.value->data()), m.value->size());
    util::Bytes reply;
    util::Writer w(reply);
    w.raw(std::as_bytes(std::span<const char>("pong", 4)));
    conn->send(std::move(reply));
  });
  f.eng.spawn("client", [&] {
    auto conn = f.net.connect(1, {0, 7000}, TransportKind::kTcpIp);
    ASSERT_NE(conn, nullptr);
    util::Bytes msg;
    util::Writer w(msg);
    w.raw(std::as_bytes(std::span<const char>("ping", 4)));
    conn->send(std::move(msg));
    auto m = conn->recv();
    ASSERT_TRUE(m.ok());
    got_at_client.assign(reinterpret_cast<const char*>(m.value->data()), m.value->size());
  });
  f.eng.run();
  EXPECT_EQ(got_at_server, "ping");
  EXPECT_EQ(got_at_client, "pong");
}

TEST(Stream, ConnectToNobodyReturnsNull) {
  Fixture f;
  ConnectionPtr conn = nullptr;
  bool ran = false;
  f.eng.spawn("client", [&] {
    conn = f.net.connect(1, {0, 9999}, TransportKind::kTcpIp);
    ran = true;
  });
  f.eng.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(conn, nullptr);
}

TEST(Stream, GracefulCloseDrainsThenEof) {
  Fixture f;
  auto acc = f.net.listen(0, 7000, TransportKind::kTcpIp);
  std::vector<sim::RecvStatus> statuses;
  f.eng.spawn("server", [&] {
    auto c = acc->accept();
    ASSERT_TRUE(c.ok());
    for (int i = 0; i < 3; ++i) statuses.push_back((*c.value)->recv().status);
  });
  f.eng.spawn("client", [&] {
    auto conn = f.net.connect(1, {0, 7000}, TransportKind::kTcpIp);
    ASSERT_NE(conn, nullptr);
    conn->send(make_payload(4));
    conn->send(make_payload(4));
    conn->close();
  });
  f.eng.run();
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_EQ(statuses[0], sim::RecvStatus::kOk);
  EXPECT_EQ(statuses[1], sim::RecvStatus::kOk);
  EXPECT_EQ(statuses[2], sim::RecvStatus::kClosed);
}

TEST(Stream, PeerCrashBreaksConnection) {
  Fixture f;
  auto acc = f.net.listen(0, 7000, TransportKind::kTcpIp);
  sim::RecvStatus server_status = sim::RecvStatus::kOk;
  ConnectionPtr server_conn;
  f.eng.spawn("server", [&] {
    auto c = acc->accept();
    ASSERT_TRUE(c.ok());
    server_conn = *c.value;
    server_status = server_conn->recv().status;
  });
  f.eng.spawn("client", [&] {
    auto conn = f.net.connect(1, {0, 7000}, TransportKind::kTcpIp);
    ASSERT_NE(conn, nullptr);
    f.eng.sleep(milliseconds(5));
  });
  f.eng.schedule(milliseconds(2), [&] { f.net.crash_host(1); });
  f.eng.run();
  EXPECT_EQ(server_status, sim::RecvStatus::kClosed);
  EXPECT_TRUE(server_conn->broken());
  EXPECT_FALSE(server_conn->send(make_payload(1)));
}

TEST(Stream, RecvTimeout) {
  Fixture f;
  auto acc = f.net.listen(0, 7000, TransportKind::kTcpIp);
  sim::RecvStatus status = sim::RecvStatus::kOk;
  f.eng.spawn("server", [&] {
    auto c = acc->accept();
    ASSERT_TRUE(c.ok());
    status = (*c.value)->recv(f.eng.now() + milliseconds(10)).status;
  });
  f.eng.spawn("client", [&] {
    auto conn = f.net.connect(1, {0, 7000}, TransportKind::kTcpIp);
    ASSERT_NE(conn, nullptr);
    f.eng.sleep(seconds(1));  // keep the connection open, send nothing
  });
  f.eng.run();
  EXPECT_EQ(status, sim::RecvStatus::kTimeout);
}

TEST(Stream, SameHostConnection) {
  // The daemon<->client sessions sometimes run on one node.
  Fixture f;
  auto acc = f.net.listen(0, 7000, TransportKind::kTcpIp);
  std::string got;
  f.eng.spawn("server", [&] {
    auto c = acc->accept();
    ASSERT_TRUE(c.ok());
    auto m = (*c.value)->recv();
    ASSERT_TRUE(m.ok());
    got.assign(reinterpret_cast<const char*>(m.value->data()), m.value->size());
  });
  f.eng.spawn("client", [&] {
    auto conn = f.net.connect(0, {0, 7000}, TransportKind::kTcpIp);
    ASSERT_NE(conn, nullptr);
    util::Bytes b;
    util::Writer w(b);
    w.raw(std::as_bytes(std::span<const char>("self", 4)));
    conn->send(std::move(b));
  });
  f.eng.run();
  EXPECT_EQ(got, "self");
}

TEST(Stream, AcceptorHostCrashWakesAccept) {
  Fixture f;
  auto acc = f.net.listen(0, 7000, TransportKind::kTcpIp);
  sim::RecvStatus status = sim::RecvStatus::kOk;
  f.eng.spawn("server", [&] { status = acc->accept().status; });
  f.eng.schedule(milliseconds(1), [&] { f.net.crash_host(0); });
  f.eng.run();
  EXPECT_EQ(status, sim::RecvStatus::kClosed);
}

TEST(Stream, ManyMessagesBothDirections) {
  Fixture f;
  auto acc = f.net.listen(0, 7000, TransportKind::kTcpIp);
  int server_got = 0, client_got = 0;
  f.eng.spawn("server", [&] {
    auto c = acc->accept();
    ASSERT_TRUE(c.ok());
    auto conn = *c.value;
    for (int i = 0; i < 30; ++i) {
      auto m = conn->recv();
      if (!m.ok()) break;
      ++server_got;
      conn->send(make_payload(8));
    }
  });
  f.eng.spawn("client", [&] {
    auto conn = f.net.connect(1, {0, 7000}, TransportKind::kTcpIp);
    ASSERT_NE(conn, nullptr);
    for (int i = 0; i < 30; ++i) {
      conn->send(make_payload(8));
      auto m = conn->recv();
      if (!m.ok()) break;
      ++client_got;
    }
  });
  f.eng.run();
  EXPECT_EQ(server_got, 30);
  EXPECT_EQ(client_got, 30);
}

// ---------------------------------------------------------------- VNI ----

TEST(Vni, RoundTripMatchesFigure5Anchor) {
  // The ping application of section 5 at 1 byte: RTT 86 us on BIP.
  Fixture f;
  net::Vni vni_a(f.net, *f.net.host(0), TransportKind::kBipMyrinet);
  net::Vni vni_b(f.net, *f.net.host(1), TransportKind::kBipMyrinet);
  sim::Time rtt = -1;
  f.eng.spawn("ponger", [&] {
    auto r = vni_b.recv();
    ASSERT_TRUE(r.ok());
    vni_b.send(r.value->src, std::move(r.value->payload));
  });
  f.eng.spawn("pinger", [&] {
    const sim::Time start = f.eng.now();
    vni_a.send(vni_b.addr(), make_payload(1));
    auto r = vni_a.recv();
    ASSERT_TRUE(r.ok());
    rtt = f.eng.now() - start;
  });
  f.eng.run();
  // 86 us fixed cost plus the (sub-microsecond) wire term for one byte.
  EXPECT_NEAR(static_cast<double>(rtt), static_cast<double>(microseconds(86)), 100.0);
}

TEST(Vni, PollingThreadDrainsWithoutConsumer) {
  // Eager sends arrive before any matching receive is posted; the polling
  // thread must pull them off the wire into the local queue.
  Fixture f;
  net::Vni tx(f.net, *f.net.host(0), TransportKind::kBipMyrinet);
  net::Vni rx(f.net, *f.net.host(1), TransportKind::kBipMyrinet);
  f.eng.spawn("tx", [&] {
    for (int i = 0; i < 5; ++i) tx.send(rx.addr(), make_payload(16));
  });
  f.eng.run();
  EXPECT_EQ(rx.queued(), 5u);
  int drained = 0;
  f.eng.spawn("late-rx", [&] {
    while (rx.try_recv()) ++drained;
  });
  f.eng.run();
  EXPECT_EQ(drained, 5);
}

TEST(Vni, BlockingModeChargesPenaltyOnCriticalPath) {
  Fixture f;
  net::Vni tx(f.net, *f.net.host(0), TransportKind::kTcpIp, /*polling=*/true);
  net::Vni rx_polling(f.net, *f.net.host(1), TransportKind::kTcpIp, /*polling=*/true);
  net::Vni rx_blocking(f.net, *f.net.host(2), TransportKind::kTcpIp, /*polling=*/false);
  sim::Time t_polling = -1, t_blocking = -1;
  f.eng.spawn("rx-poll", [&] {
    (void)rx_polling.recv();
    t_polling = f.eng.now();
  });
  f.eng.spawn("rx-block", [&] {
    (void)rx_blocking.recv();
    t_blocking = f.eng.now();
  });
  f.eng.spawn("tx", [&] {
    tx.send(rx_polling.addr(), make_payload(8));
    tx.send(rx_blocking.addr(), make_payload(8));
  });
  f.eng.run();
  EXPECT_EQ(t_blocking - t_polling, tcp_ip_model().blocking_recv_penalty);
}

TEST(Vni, HostCrashClosesReceivePath) {
  Fixture f;
  auto rx = std::make_unique<net::Vni>(f.net, *f.net.host(1), TransportKind::kBipMyrinet);
  sim::RecvStatus status = sim::RecvStatus::kOk;
  f.eng.spawn("rx", [&] { status = rx->recv().status; });
  f.eng.schedule(milliseconds(1), [&] { f.net.crash_host(1); });
  f.eng.run();
  EXPECT_EQ(status, sim::RecvStatus::kClosed);
}

TEST(Vni, CountsFrames) {
  Fixture f;
  net::Vni a(f.net, *f.net.host(0), TransportKind::kBipMyrinet);
  net::Vni b(f.net, *f.net.host(1), TransportKind::kBipMyrinet);
  f.eng.spawn("rx", [&] {
    for (int i = 0; i < 3; ++i) (void)b.recv();
  });
  f.eng.spawn("tx", [&] {
    for (int i = 0; i < 3; ++i) a.send(b.addr(), make_payload(4));
  });
  f.eng.run();
  EXPECT_EQ(a.frames_sent(), 3u);
  EXPECT_EQ(b.frames_received(), 3u);
}

// -------------------------------------------------------- FaultShutdown ----
//
// Shutdown edges under active fault plans: packets still in flight (or still
// queued) when an endpoint closes must follow drain-then-kClosed semantics,
// and the injector counters must tie out exactly with what was observed.

TEST(FaultShutdown, DuplicatedDatagramsDrainBeforeClosed) {
  Fixture f;
  // duplicate=1.0 with no jitter: every datagram arrives exactly twice,
  // deterministically, with the copy ordered right after the original.
  f.net.faults().set_link(0, 1, {.duplicate = 1.0});
  auto a = f.net.bind(0, 100, TransportKind::kBipMyrinet);
  auto b = f.net.bind(1, 100, TransportKind::kBipMyrinet);
  std::vector<sim::RecvStatus> statuses;
  f.eng.spawn("tx", [&] { a->send({1, 100}, make_payload(8)); });
  // Close only after both copies have been delivered into the inbox; the
  // pending items must drain as kOk before the close is reported.
  f.eng.schedule(milliseconds(1), [&] { b->close(); });
  f.eng.spawn("rx", [&] {
    f.eng.sleep(milliseconds(2));
    for (int i = 0; i < 3; ++i) statuses.push_back(b->recv().status);
  });
  f.eng.run();
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_EQ(statuses[0], sim::RecvStatus::kOk);
  EXPECT_EQ(statuses[1], sim::RecvStatus::kOk);  // the duplicate drains too
  EXPECT_EQ(statuses[2], sim::RecvStatus::kClosed);
  EXPECT_EQ(f.net.faults().counters().datagrams_duplicated, 1u);
}

TEST(FaultShutdown, DuplicateArrivingAfterCloseIsDroppedSilently) {
  Fixture f;
  f.net.faults().set_link(0, 1, {.duplicate = 1.0});
  auto a = f.net.bind(0, 100, TransportKind::kBipMyrinet);
  auto b = f.net.bind(1, 100, TransportKind::kBipMyrinet);
  int received = 0;
  f.eng.spawn("tx", [&] { a->send({1, 100}, make_payload(8)); });
  f.eng.spawn("rx", [&] {
    // Take the first copy, then close: the duplicate is scheduled one tick
    // later and lands on an unbound port — dropped without any error.
    if (b->recv().ok()) ++received;
    b->close();
  });
  f.eng.run();
  EXPECT_EQ(received, 1);
  EXPECT_TRUE(b->closed());
  // The injector still accounts for the duplicate it created even though
  // the copy never reached a consumer.
  EXPECT_EQ(f.net.faults().counters().datagrams_duplicated, 1u);
}

TEST(FaultShutdown, DelayedStreamFramesDrainBeforeFin) {
  Fixture f;
  // A hefty fixed delay on the client->server direction: the FIN from
  // close() must still be ordered after every delayed in-flight frame.
  f.net.faults().set_link(1, 0, {.delay = milliseconds(5)});
  auto acc = f.net.listen(0, 7000, TransportKind::kTcpIp);
  std::vector<sim::RecvStatus> statuses;
  f.eng.spawn("server", [&] {
    auto c = acc->accept();
    ASSERT_TRUE(c.ok());
    for (int i = 0; i < 4; ++i) statuses.push_back((*c.value)->recv().status);
  });
  f.eng.spawn("client", [&] {
    auto conn = f.net.connect(1, {0, 7000}, TransportKind::kTcpIp);
    ASSERT_NE(conn, nullptr);
    for (int i = 0; i < 3; ++i) conn->send(make_payload(16));
    conn->close();  // issued while all three frames are still in flight
  });
  f.eng.run();
  ASSERT_EQ(statuses.size(), 4u);
  EXPECT_EQ(statuses[0], sim::RecvStatus::kOk);
  EXPECT_EQ(statuses[1], sim::RecvStatus::kOk);
  EXPECT_EQ(statuses[2], sim::RecvStatus::kOk);
  EXPECT_EQ(statuses[3], sim::RecvStatus::kClosed);
  // Every data frame was charged the fixed delay (fixed plan, no RNG), and
  // the counter ties out with the injector's own decision trace.
  EXPECT_EQ(f.net.faults().counters().datagrams_delayed, 3u);
  EXPECT_EQ(f.net.faults().trace().size(), 3u);
}

TEST(FaultShutdown, DropPlanCountersMatchObservedLoss) {
  Fixture f;
  f.net.faults().set_link(0, 1, {.drop = 1.0});
  auto a = f.net.bind(0, 100, TransportKind::kBipMyrinet);
  auto b = f.net.bind(1, 100, TransportKind::kBipMyrinet);
  const int sends = 5;
  f.eng.spawn("tx", [&] {
    for (int i = 0; i < sends; ++i) a->send({1, 100}, make_payload(4));
  });
  f.eng.run();
  int received = 0;
  while (b->try_recv()) ++received;
  EXPECT_EQ(received, 0);
  // sends - receives == datagrams the injector claims it dropped.
  EXPECT_EQ(f.net.faults().counters().datagrams_dropped,
            static_cast<uint64_t>(sends - received));
}

// Property sweep: RTT grows linearly with size on both transports.
class RoundTripLinearity : public ::testing::TestWithParam<TransportKind> {};

TEST_P(RoundTripLinearity, RttIsAffineInMessageSize) {
  const TransportKind kind = GetParam();
  auto measure = [&](size_t bytes) {
    Fixture f(2);
    net::Vni a(f.net, *f.net.host(0), kind);
    net::Vni b(f.net, *f.net.host(1), kind);
    sim::Time rtt = -1;
    f.eng.spawn("ponger", [&] {
      auto r = b.recv();
      if (r.ok()) b.send(r.value->src, std::move(r.value->payload));
    });
    f.eng.spawn("pinger", [&] {
      const sim::Time start = f.eng.now();
      a.send(b.addr(), make_payload(bytes));
      (void)a.recv();
      rtt = f.eng.now() - start;
    });
    f.eng.run();
    return rtt;
  };
  const sim::Time r1 = measure(1);
  const sim::Time r2 = measure(10'000);
  const sim::Time r3 = measure(20'000);
  const sim::Time r4 = measure(40'000);
  EXPECT_GT(r2, r1);
  // Affine: doubling the size increment doubles the time increment
  // (tolerance covers integer-nanosecond rounding).
  EXPECT_NEAR(static_cast<double>(r4 - r3), 2.0 * static_cast<double>(r3 - r2), 10.0);
}

INSTANTIATE_TEST_SUITE_P(BothTransports, RoundTripLinearity,
                         ::testing::Values(TransportKind::kTcpIp, TransportKind::kBipMyrinet));

}  // namespace
}  // namespace starfish::net
