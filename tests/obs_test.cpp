// starfish::obs tests: registry semantics, tracer ring + Chrome export, and
// the two properties the layer exists for — same-seed runs export identical
// artifacts, and attaching a hub never perturbs the simulation it observes.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "core/cluster.hpp"
#include "net/faults.hpp"
#include "net/network.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"

namespace starfish::obs {
namespace {

using daemon::CkptLevel;
using daemon::CrProtocol;
using daemon::FtPolicy;
using daemon::JobSpec;
using sim::milliseconds;

// ------------------------------------------------------------- Metrics ----

TEST(ObsMetrics, CounterGaugeBasics) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a.count");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&reg.counter("a.count"), &c);  // find-or-create, stable address

  Gauge& g = reg.gauge("a.depth");
  g.set(5);
  g.add(-2);
  g.set(9);
  g.add(-9);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 9);

  EXPECT_EQ(reg.find_counter("a.count"), &c);
  EXPECT_EQ(reg.find_counter("never.touched"), nullptr);
  EXPECT_EQ(reg.find_gauge("never.touched"), nullptr);
  EXPECT_EQ(reg.find_histogram("never.touched"), nullptr);
}

TEST(ObsMetrics, ReferencesSurviveLaterInsertions) {
  // std::map is node-based; references handed out must not dangle as the
  // registry grows — hot paths cache them across the whole run.
  MetricsRegistry reg;
  Counter& first = reg.counter("m.000");
  for (int i = 1; i < 200; ++i) reg.counter("m." + std::to_string(i));
  first.add(7);
  EXPECT_EQ(reg.find_counter("m.000")->value(), 7u);
}

TEST(ObsMetrics, HistogramBucketsAndOverflow) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", HistogramSpec::exponential(10, 10.0, 3));
  ASSERT_EQ(h.bounds(), (std::vector<uint64_t>{10, 100, 1000}));
  h.record(10);    // on an inclusive bound -> first bucket
  h.record(11);    // -> second bucket
  h.record(1000);  // inclusive -> third bucket
  h.record(5000);  // -> overflow
  EXPECT_EQ(h.buckets(), (std::vector<uint64_t>{1, 1, 1, 1}));
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 10u + 11 + 1000 + 5000);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 5000u);
  // The spec is fixed at creation: a different spec for the same name is
  // ignored on the find path.
  EXPECT_EQ(&reg.histogram("lat", HistogramSpec::linear(1, 1, 2)), &h);
  EXPECT_EQ(h.bounds().size(), 3u);
}

TEST(ObsMetrics, JsonSnapshotIsSortedAndStable) {
  MetricsRegistry reg;
  reg.counter("zz").add(1);
  reg.counter("aa").add(2);
  reg.gauge("g").set(-3);
  reg.histogram("h", HistogramSpec::linear(5, 5, 2)).record(6);
  const std::string json = reg.to_json();
  EXPECT_LT(json.find("\"aa\""), json.find("\"zz\""));  // name-sorted
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("-3"), std::string::npos);
  EXPECT_EQ(json, reg.to_json());  // snapshotting has no side effects
}

// --------------------------------------------------------------- Tracer ----

TEST(ObsTrace, DisabledTracerRecordsNothing) {
  Tracer t(8);
  EXPECT_FALSE(t.enabled());
  t.instant(1, "cat", "ev", 0);
  t.complete(1, 2, "cat", "span", 0);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
}

TEST(ObsTrace, RingOverwritesOldestAndCountsDrops) {
  Tracer t(4);
  t.set_enabled(true);
  for (uint64_t i = 0; i < 10; ++i) t.instant(i, "cat", "ev" + std::to_string(i), 0);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].ts_ns, 6 + i);  // oldest retained first
  }
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

TEST(ObsTrace, ChromeExportIsWellFormed) {
  Tracer t;
  t.set_enabled(true);
  t.begin(1000, "net", "send", 2, 7);
  t.end(3500, "net", "send", 2, 7);
  t.complete(5000, 2500, "ckpt", "put a/r0/e1", 1);
  t.instant(9999, "fault", "drop ->host3", 0);
  const std::string json = t.to_chrome_json();
  // Container shape Perfetto/chrome://tracing accept.
  EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // One entry per phase, with pid/tid mapping and microsecond timestamps
  // carrying the nanosecond precision as fixed fractional digits.
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);  // instant scope
  EXPECT_NE(json.find("\"ts\": 1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 2.500"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 7"), std::string::npos);
  EXPECT_EQ(json, t.to_chrome_json());  // export is a pure snapshot
}

// ------------------------------------------------------------ wiring ------

TEST(Obs, EngineCountsEventsAndFiberSwitches) {
  Hub hub;
  sim::Engine eng;
  eng.set_obs(&hub);
  int ticks = 0;
  eng.spawn("worker", [&] {
    for (int i = 0; i < 5; ++i) eng.sleep(milliseconds(1));
  });
  eng.schedule(milliseconds(10), [&] { ++ticks; });
  eng.run();
  ASSERT_EQ(ticks, 1);
  const Counter* events = hub.metrics.find_counter("sim.events_executed");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->value(), eng.events_executed());
  const Counter* switches = hub.metrics.find_counter("sim.fiber_switches");
  ASSERT_NE(switches, nullptr);
  EXPECT_GE(switches->value(), 5u);  // one resume per sleep wakeup at least
  const Histogram* runq = hub.metrics.find_histogram("sim.run_queue_depth");
  ASSERT_NE(runq, nullptr);
  EXPECT_EQ(runq->count(), events->value());  // one depth sample per event
}

TEST(Obs, FaultCountersTieOutWithInjector) {
  Hub hub;
  sim::Engine eng;
  eng.set_obs(&hub);
  net::Network net(eng);
  for (int i = 0; i < 4; ++i) net.add_host("n" + std::to_string(i));
  net.faults().set_link(0, 1, {.drop = 1.0});
  net.faults().set_link(0, 2, {.duplicate = 1.0});
  net.faults().partition({0}, {3});

  auto a = net.bind(0, 9, net::TransportKind::kBipMyrinet);
  auto b = net.bind(1, 9, net::TransportKind::kBipMyrinet);
  auto c = net.bind(2, 9, net::TransportKind::kBipMyrinet);
  auto d = net.bind(3, 9, net::TransportKind::kBipMyrinet);
  eng.spawn("tx", [&] {
    for (int i = 0; i < 3; ++i) a->send({1, 9}, util::Bytes(4, std::byte{1}));  // dropped
    for (int i = 0; i < 2; ++i) a->send({2, 9}, util::Bytes(4, std::byte{2}));  // duplicated
    a->send({3, 9}, util::Bytes(4, std::byte{3}));  // partitioned away
  });
  eng.run();
  (void)b;
  (void)d;
  int via_c = 0;
  while (c->try_recv()) ++via_c;
  EXPECT_EQ(via_c, 4);  // 2 sends, each delivered twice

  const net::FaultCounters& fc = net.faults().counters();
  ASSERT_EQ(fc.datagrams_dropped, 3u);
  ASSERT_EQ(fc.datagrams_duplicated, 2u);
  ASSERT_EQ(fc.partition_drops, 1u);
  // The obs counters mirror the injector's own tallies one for one.
  ASSERT_NE(hub.metrics.find_counter("net.fault.drop"), nullptr);
  EXPECT_EQ(hub.metrics.find_counter("net.fault.drop")->value(), fc.datagrams_dropped);
  EXPECT_EQ(hub.metrics.find_counter("net.fault.duplicate")->value(), fc.datagrams_duplicated);
  EXPECT_EQ(hub.metrics.find_counter("net.fault.partition-drop")->value(), fc.partition_drops);
  // Transport accounting mirrors the network's own packet counter, which
  // includes the injected duplicate copies (6 sends + 2 duplicates).
  EXPECT_EQ(hub.metrics.find_counter("net.packets_sent")->value(), net.packets_sent());
  EXPECT_EQ(net.packets_sent(), 8u);
}

// --------------------------------------------- end-to-end cluster runs ----

std::string ring_program(int rounds, int spin) {
  return R"(
func main 0 2
  syscall rank
  store_local 0
  syscall world_size
  store_local 1
  push_int 0
  store_global 0
  push_int 0
  store_global 1
loop:
  load_global 0
  push_int )" + std::to_string(rounds) + R"(
  ge
  jmp_if_false body
  jmp done
body:
  push_int )" + std::to_string(spin) + R"(
  syscall spin
  load_local 0
  push_int 0
  eq
  jmp_if_false relay
  push_int 1
  load_global 1
  syscall send_to
  push_int -1
  syscall recv_from
  store_global 1
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
relay:
  push_int -1
  syscall recv_from
  load_local 0
  add
  store_global 1
  load_local 0
  push_int 1
  add
  load_local 1
  mod
  load_global 1
  syscall send_to
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
done:
  load_local 0
  push_int 0
  eq
  jmp_if_false finish
  load_global 1
  syscall print
finish:
  halt
)";
}

struct RunResult {
  bool done = false;
  sim::Time end_time = 0;
  uint64_t events = 0;
  std::vector<std::string> output;
  std::vector<std::string> fault_trace;
};

/// One chaos-flavoured recovery run: lossy TCP fabric, a mid-run node
/// crash — exercising every instrumented subsystem. `hub` may be null
/// (uninstrumented reference run).
RunResult chaos_run(Hub* hub, uint64_t seed, CrProtocol proto = CrProtocol::kStopAndSync) {
  core::ClusterOptions opts;
  opts.nodes = 4;
  opts.seed = seed;
  core::Cluster cluster(opts);
  if (hub != nullptr) cluster.engine().set_obs(hub);
  cluster.registry().register_vm("ring", ring_program(40, 100000));
  cluster.boot();
  cluster.faults().set_transport(net::TransportKind::kTcpIp,
                                 {.drop = 0.01, .duplicate = 0.01, .delay = sim::microseconds(20)});
  JobSpec job;
  job.name = "obsring";
  job.binary = "ring";
  job.nprocs = 4;
  job.policy = FtPolicy::kRestart;
  job.protocol = proto;
  job.level = CkptLevel::kVm;
  job.ckpt_interval = milliseconds(50);
  cluster.submit(job);
  cluster.run_for(milliseconds(150));
  cluster.crash_node(2);
  RunResult r;
  r.done = cluster.run_until_done("obsring");
  r.end_time = cluster.engine().now();
  r.events = cluster.engine().events_executed();
  r.output = cluster.output("obsring");
  r.fault_trace = cluster.faults().trace();
  return r;
}

/// Drops the one metric family measured in host wall-clock time —
/// sim.shard.<i>.barrier_wait_ns, how long each worker thread really waited
/// at epoch barriers — which legitimately varies between same-seed runs when
/// the suite executes with STARFISH_SHARDS > 1. Every virtual-domain line
/// must still match bit for bit.
std::string without_host_time_lines(const std::string& json) {
  std::string out;
  size_t pos = 0;
  while (pos < json.size()) {
    size_t end = json.find('\n', pos);
    if (end == std::string::npos) end = json.size();
    const std::string_view line(json.data() + pos, end - pos);
    if (line.find("barrier_wait_ns") == std::string_view::npos) {
      out.append(line);
      out.push_back('\n');
    }
    pos = end + 1;
  }
  return out;
}

TEST(Obs, SameSeedRunsExportIdenticalArtifacts) {
  Hub h1, h2;
  h1.tracer.set_enabled(true);
  h2.tracer.set_enabled(true);
  const RunResult r1 = chaos_run(&h1, 7);
  const RunResult r2 = chaos_run(&h2, 7);
  ASSERT_TRUE(r1.done);
  ASSERT_TRUE(r2.done);
  // Same seed, same virtual time: metrics and trace replay bit for bit
  // (barrier wait excepted — it is host time by definition).
  EXPECT_EQ(without_host_time_lines(h1.metrics.to_json()),
            without_host_time_lines(h2.metrics.to_json()));
  EXPECT_EQ(h1.tracer.to_chrome_json(), h2.tracer.to_chrome_json());
  EXPECT_GT(h1.tracer.recorded(), 0u);
}

TEST(Obs, AttachingHubDoesNotPerturbSimulation) {
  Hub hub;
  hub.tracer.set_enabled(true);
  const RunResult with = chaos_run(&hub, 11);
  const RunResult without = chaos_run(nullptr, 11);
  ASSERT_TRUE(with.done);
  ASSERT_TRUE(without.done);
  // Observability must never feed back: identical end time, event count,
  // program output and fault schedule whether or not anyone is watching.
  EXPECT_EQ(with.end_time, without.end_time);
  EXPECT_EQ(with.events, without.events);
  EXPECT_EQ(with.output, without.output);
  EXPECT_EQ(with.fault_trace, without.fault_trace);
}

TEST(Obs, ClusterRecoveryPopulatesDomainCounters) {
  Hub hub;
  const RunResult r = chaos_run(&hub, 3);
  ASSERT_TRUE(r.done);
  const MetricsRegistry& m = hub.metrics;
  auto counter = [&](const char* name) {
    const Counter* c = m.find_counter(name);
    return c == nullptr ? 0ull : c->value();
  };
  // Engine layer.
  EXPECT_EQ(counter("sim.events_executed"), r.events);
  EXPECT_GT(counter("sim.fiber_switches"), 0u);
  // Transport layer: packets flowed and faults fired.
  EXPECT_GT(counter("net.packets_sent"), 0u);
  EXPECT_GT(counter("net.bytes_sent"), 0u);
  EXPECT_GT(counter("vni.frames_sent"), 0u);
  EXPECT_GT(counter("net.fault.drop") + counter("net.fault.duplicate") +
                counter("net.fault.delay") + counter("net.fault.stream-delay") +
                counter("net.fault.stream-retransmit"),
            0u);
  // Membership: boot view plus the post-crash view on every daemon.
  EXPECT_GT(counter("gcs.views_installed"), 0u);
  EXPECT_GT(counter("gcs.messages_delivered"), 0u);
  // Checkpointing: epochs taken, committed and restored from.
  EXPECT_GT(counter("ckpt.checkpoints_taken"), 0u);
  EXPECT_GT(counter("ckpt.pages_written"), 0u);
  EXPECT_GT(counter("ckpt.store.images_written"), 0u);
  EXPECT_GT(counter("ckpt.store.epochs_committed"), 0u);
  // Daemon layer: one submit per hosting daemon, initial launches plus the
  // restart (with per-rank restores) after the crash.
  EXPECT_GE(counter("daemon.jobs_submitted"), 1u);
  EXPECT_GE(counter("daemon.launches"), 4u);
  EXPECT_GT(counter("daemon.restarts"), 0u);
  EXPECT_GT(counter("daemon.restores"), 0u);
  // Per-link latency histograms materialized for real traffic.
  EXPECT_GT(m.size(), 10u);
}

TEST(Obs, UncoordinatedRecoveryCountsRecoveryLines) {
  // The recovery-line computation only runs for uncoordinated checkpoints;
  // the ring communicates constantly, so the rollback may legitimately
  // reach the start — the counter records that a line was computed at all.
  Hub hub;
  const RunResult r = chaos_run(&hub, 5, CrProtocol::kUncoordinated);
  ASSERT_TRUE(r.done);
  const Counter* lines = hub.metrics.find_counter("ckpt.recovery_lines");
  ASSERT_NE(lines, nullptr);
  EXPECT_GT(lines->value(), 0u);
}

// ----------------------------------------------------------- default hub ---

TEST(Obs, DefaultHubIsPickedUpByNewEngines) {
  Hub hub;
  set_default_hub(&hub);
  sim::Engine eng;  // constructed after installation -> instruments into hub
  eng.schedule(milliseconds(1), [] {});
  eng.run();
  set_default_hub(nullptr);
  const Counter* events = hub.metrics.find_counter("sim.events_executed");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->value(), eng.events_executed());
}

}  // namespace
}  // namespace starfish::obs
