// Property-based sweeps across the stack: randomized workloads driven by
// seeded RNGs, checked against invariants rather than fixed expectations.
// Every test is deterministic per seed (the simulator replays bit-for-bit).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ckpt/image.hpp"
#include "ckpt/incremental.hpp"
#include "ckpt/recovery.hpp"
#include "gcs/endpoint.hpp"
#include "mpi/comm.hpp"
#include "mpi/proc.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace starfish {
namespace {

using sim::milliseconds;
using sim::seconds;

// ------------------------------------------------- sim: channel orders ----

class ChannelProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChannelProperty, FifoUnderRandomInterleavings) {
  // Many writers with random pacing into one channel: per-writer order must
  // be preserved at the single reader.
  sim::Engine eng;
  sim::Channel<std::pair<int, int>> ch(eng);
  util::Rng rng(GetParam());
  constexpr int kWriters = 5;
  constexpr int kPerWriter = 40;
  std::vector<std::vector<int>> seen(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    const uint64_t pace_seed = rng.next();
    eng.spawn("writer", [&eng, &ch, w, pace_seed] {
      util::Rng pace(pace_seed);
      for (int i = 0; i < kPerWriter; ++i) {
        eng.sleep(sim::microseconds(static_cast<int64_t>(pace.below(50))));
        ch.send({w, i});
      }
    });
  }
  eng.spawn("reader", [&] {
    for (int i = 0; i < kWriters * kPerWriter; ++i) {
      auto r = ch.recv();
      ASSERT_TRUE(r.ok());
      seen[static_cast<size_t>(r.value->first)].push_back(r.value->second);
    }
  });
  eng.run();
  for (int w = 0; w < kWriters; ++w) {
    ASSERT_EQ(seen[static_cast<size_t>(w)].size(), static_cast<size_t>(kPerWriter));
    for (int i = 0; i < kPerWriter; ++i) EXPECT_EQ(seen[static_cast<size_t>(w)][i], i);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelProperty, ::testing::Values(1u, 7u, 42u, 1234u));

// ------------------------------- ckpt: incremental delta round-trips ----

class IncrementalProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalProperty, RandomEvolutionRoundTripsAndMatchesMemcmp) {
  // A state evolves over many epochs — pages mutated, the blob grown and
  // shrunk through partial tail pages, the hash cache occasionally thrown
  // away. Invariants per epoch: the hash-cache encoder emits a
  // byte-identical delta to the cacheless (memcmp) encoder, and applying
  // the delta to the previous state reproduces the current one exactly.
  util::Rng rng(GetParam());
  util::Bytes state((1 + rng.below(4)) * ckpt::kPageBytes + rng.below(ckpt::kPageBytes));
  for (auto& b : state) b = static_cast<std::byte>(rng.next());
  ckpt::PageHashCache cache;
  cache.rebuild(util::as_bytes_view(state));
  for (int epoch = 0; epoch < 16; ++epoch) {
    util::Bytes next = state;
    switch (rng.below(4)) {
      case 0:  // grow, usually into a partial tail page
        next.resize(next.size() + 1 + rng.below(2 * ckpt::kPageBytes),
                    static_cast<std::byte>(epoch));
        break;
      case 1: {  // shrink (possibly to empty)
        const size_t cut = std::min<size_t>(next.size(), rng.below(2 * ckpt::kPageBytes));
        next.resize(next.size() - cut);
        break;
      }
      default:  // keep the size
        break;
    }
    for (uint64_t m = rng.below(6); m > 0 && !next.empty(); --m) {
      next[rng.below(next.size())] = static_cast<std::byte>(rng.next());
    }
    if (rng.chance(0.2)) cache.valid = false;  // exercise the cold-cache path

    uint64_t changed_hashed = 0;
    uint64_t changed_plain = 0;
    auto delta_hashed = ckpt::incremental_encode(state, next, &changed_hashed, &cache);
    auto delta_plain = ckpt::incremental_encode(state, next, &changed_plain, nullptr);
    EXPECT_EQ(delta_hashed, delta_plain);
    EXPECT_EQ(changed_hashed, changed_plain);

    auto back = ckpt::incremental_apply(state, delta_hashed);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), next);
    state = std::move(next);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalProperty,
                         ::testing::Values(1u, 7u, 42u, 99u, 1234u, 777777u));

// --------------------------------------------- gcs: total order sweeps ----

class GcsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GcsProperty, TotalOrderAndExactlyOnceUnderCrash) {
  // Random senders, random crash time of a random non-coordinator member:
  // survivors deliver identical sequences with no duplicates, and every
  // message from a survivor is delivered exactly once.
  util::Rng rng(GetParam());
  const size_t n = 3 + rng.below(4);  // 3..6 members
  sim::Engine eng;
  net::Network net(eng);
  std::vector<std::unique_ptr<gcs::GroupEndpoint>> eps;
  std::vector<std::vector<std::string>> delivered(n);
  std::vector<net::NetAddr> founders;
  for (size_t i = 0; i < n; ++i) {
    founders.push_back({net.add_host("n" + std::to_string(i))->id(), 1});
  }
  for (size_t i = 0; i < n; ++i) {
    gcs::Callbacks cbs;
    cbs.on_message = [&delivered, i](gcs::MemberId origin, const util::Bytes& payload) {
      delivered[i].push_back(origin.to_string() + ":" +
                             std::string(reinterpret_cast<const char*>(payload.data()),
                                         payload.size()));
    };
    eps.push_back(std::make_unique<gcs::GroupEndpoint>(net, *net.host(i), gcs::GroupConfig{},
                                                       std::move(cbs)));
  }
  for (auto& ep : eps) ep->start_founding(founders);

  const size_t victim = 1 + rng.below(n - 1);  // never the initial coordinator
  const sim::Duration crash_at = milliseconds(static_cast<int64_t>(50 + rng.below(300)));
  for (size_t i = 0; i < n; ++i) {
    auto* ep = eps[i].get();
    const uint64_t pace_seed = rng.next();
    net.host(i)->spawn("sender", [&eng, ep, i, pace_seed] {
      util::Rng pace(pace_seed);
      for (int k = 0; k < 25; ++k) {
        eng.sleep(milliseconds(1 + static_cast<int64_t>(pace.below(15))));
        const std::string text = "m" + std::to_string(i) + "." + std::to_string(k);
        util::Bytes b(reinterpret_cast<const std::byte*>(text.data()),
                      reinterpret_cast<const std::byte*>(text.data() + text.size()));
        ep->multicast(std::move(b));
      }
    });
  }
  eng.schedule(crash_at, [&] { net.crash_host(static_cast<sim::HostId>(victim)); });
  eng.run_for(seconds(5.0));

  // All survivors agree on the full sequence.
  const auto& reference = delivered[victim == 0 ? 1 : 0];
  for (size_t i = 0; i < n; ++i) {
    if (i == victim) continue;
    EXPECT_EQ(delivered[i], reference) << "survivor " << i << " diverged (seed "
                                       << GetParam() << ")";
  }
  // Exactly-once: no duplicates, and all 25 messages of every survivor made it.
  std::set<std::string> unique(reference.begin(), reference.end());
  EXPECT_EQ(unique.size(), reference.size()) << "duplicate delivery";
  for (size_t i = 0; i < n; ++i) {
    if (i == victim) continue;
    int count = 0;
    for (const auto& m : reference) {
      if (m.rfind("m" + std::to_string(i) + ".", 0) == 0) ++count;
    }
    EXPECT_EQ(count, 25) << "lost messages from survivor " << i;
  }
  for (auto& ep : eps) ep->shutdown();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcsProperty,
                         ::testing::Values(3u, 11u, 99u, 271u, 8881u, 31337u));

// ----------------------------------------------- mpi: random exchanges ----

class MpiProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MpiProperty, RandomTrafficDeliveredExactlyOnce) {
  // Every rank sends a random number of sequence-stamped messages to random
  // peers with random sizes (crossing the eager/rendezvous boundary) and
  // receives until it has everything addressed to it.
  util::Rng rng(GetParam());
  const uint32_t n = 2 + static_cast<uint32_t>(rng.below(4));  // 2..5 ranks
  sim::Engine eng;
  net::Network net(eng);
  std::vector<std::unique_ptr<mpi::Proc>> procs;
  std::vector<net::NetAddr> addrs;
  mpi::ProcConfig config;
  config.eager_threshold = 512;
  for (uint32_t i = 0; i < n; ++i) {
    procs.push_back(
        std::make_unique<mpi::Proc>(net, *net.add_host("h" + std::to_string(i)),
                                    net::TransportKind::kBipMyrinet, config));
    addrs.push_back(procs.back()->addr());
  }
  for (uint32_t i = 0; i < n; ++i) procs[i]->configure_world(i, addrs);

  // Plan the traffic up front so receivers know what to expect.
  std::vector<std::vector<int>> inbound_count(n, std::vector<int>(n, 0));
  struct Send {
    uint32_t dst;
    size_t size;
  };
  std::vector<std::vector<Send>> plan(n);
  for (uint32_t src = 0; src < n; ++src) {
    const int k = 5 + static_cast<int>(rng.below(20));
    for (int i = 0; i < k; ++i) {
      Send s;
      do {
        s.dst = static_cast<uint32_t>(rng.below(n));
      } while (s.dst == src);
      s.size = 1 + rng.below(4000);  // straddles the 512-byte threshold
      plan[src].push_back(s);
      ++inbound_count[s.dst][src];
    }
  }

  std::vector<std::map<uint32_t, std::vector<uint64_t>>> got(n);
  for (uint32_t r = 0; r < n; ++r) {
    auto* proc = procs[r].get();
    int expect = 0;
    for (uint32_t s = 0; s < n; ++s) expect += inbound_count[r][s];
    net.host(r)->spawn("rx", [proc, r, expect, &got] {
      for (int i = 0; i < expect; ++i) {
        mpi::RecvStatus st;
        auto data = proc->recv(mpi::kWorldCommId, mpi::kAnySource, 0, &st);
        util::Reader reader(util::as_bytes_view(data));
        got[r][static_cast<uint32_t>(st.source)].push_back(reader.u64().value_or(999999));
      }
    });
    const uint64_t pace_seed = rng.next();
    net.host(r)->spawn("tx", [proc, r, &plan, &eng, pace_seed] {
      util::Rng pace(pace_seed);
      uint64_t seq = 0;
      for (const auto& s : plan[r]) {
        eng.sleep(sim::microseconds(static_cast<int64_t>(pace.below(500))));
        util::Bytes b;
        util::Writer w(b);
        w.u64(seq++);
        b.resize(std::max(b.size(), s.size), std::byte{0});
        proc->send(mpi::kWorldCommId, s.dst, 0, std::move(b));
      }
    });
  }
  eng.run_for(seconds(30.0));

  // Exactly once + per-sender FIFO (sequence numbers strictly increasing).
  for (uint32_t r = 0; r < n; ++r) {
    for (uint32_t s = 0; s < n; ++s) {
      const auto it = got[r].find(s);
      const int received = it == got[r].end() ? 0 : static_cast<int>(it->second.size());
      EXPECT_EQ(received, inbound_count[r][s])
          << "rank " << r << " from " << s << " (seed " << GetParam() << ")";
      if (it == got[r].end()) continue;
      for (size_t i = 1; i < it->second.size(); ++i) {
        EXPECT_LT(it->second[i - 1], it->second[i]) << "per-sender order violated";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpiProperty,
                         ::testing::Values(2u, 17u, 404u, 7777u, 123456u));

// ------------------------------------------ ckpt: random image states ----

class ImageProperty : public ::testing::TestWithParam<uint64_t> {};

vm::VmState random_state(util::Rng& rng, bool allow_wide_ints) {
  vm::VmState s;
  auto random_value = [&]() {
    switch (rng.below(5)) {
      case 0: return vm::Value::unit();
      case 1:
        return vm::Value::integer(allow_wide_ints
                                      ? static_cast<int64_t>(rng.next())
                                      : static_cast<int64_t>(static_cast<int32_t>(rng.next())));
      case 2: return vm::Value::real((rng.uniform() - 0.5) * 1e12);
      case 3: return vm::Value::boolean(rng.chance(0.5));
      default: return vm::Value::reference(static_cast<vm::HeapIndex>(rng.below(16)));
    }
  };
  for (size_t i = rng.below(20); i > 0; --i) s.globals.push_back(random_value());
  for (size_t i = rng.below(10); i > 0; --i) s.stack.push_back(random_value());
  for (size_t i = rng.below(4); i > 0; --i) {
    vm::Frame f;
    f.function = static_cast<uint32_t>(rng.below(8));
    f.pc = static_cast<uint32_t>(rng.below(1000));
    for (size_t k = rng.below(6); k > 0; --k) f.locals.push_back(random_value());
    s.frames.push_back(std::move(f));
  }
  for (size_t i = rng.below(5); i > 0; --i) {
    vm::HeapObject obj;
    if (rng.chance(0.5)) {
      obj.kind = vm::HeapObject::Kind::kArray;
      for (size_t k = rng.below(10); k > 0; --k) obj.fields.push_back(random_value());
    } else {
      obj.kind = vm::HeapObject::Kind::kBytes;
      obj.bytes.resize(rng.below(300));
      for (auto& b : obj.bytes) b = static_cast<std::byte>(rng.below(256));
    }
    s.heap.push_back(std::move(obj));
  }
  s.steps_executed = rng.next();
  return s;
}

TEST_P(ImageProperty, RandomStatesRoundtripAcrossAllMachinePairs) {
  util::Rng rng(GetParam());
  auto machines = sim::table2_machines();
  for (int iter = 0; iter < 10; ++iter) {
    // 32-bit-safe values so narrowing never (correctly) rejects.
    vm::VmState state = random_state(rng, /*allow_wide_ints=*/false);
    const auto& saver = machines[rng.below(machines.size())];
    const auto& target = machines[rng.below(machines.size())];
    auto img = ckpt::portable_encode(saver, state);
    auto back = ckpt::portable_decode(img, target);
    ASSERT_TRUE(back.ok()) << saver.label() << " -> " << target.label();
    EXPECT_EQ(back.value(), state);
  }
}

TEST_P(ImageProperty, RandomIncrementalChainsResolve) {
  util::Rng rng(GetParam());
  util::Bytes state(ckpt::kPageBytes * (1 + rng.below(8)) + rng.below(1000), std::byte{0});
  util::Bytes base = state;
  std::vector<util::Bytes> deltas;
  for (int step = 0; step < 6; ++step) {
    util::Bytes next = state;
    // Random mutations, possibly resizing.
    if (rng.chance(0.3)) next.resize(1 + rng.below(10 * ckpt::kPageBytes), std::byte{5});
    for (size_t k = rng.below(20); k > 0 && !next.empty(); --k) {
      next[rng.below(next.size())] = static_cast<std::byte>(rng.below(256));
    }
    deltas.push_back(ckpt::incremental_encode(state, next, nullptr));
    state = next;
  }
  util::Bytes resolved = base;
  for (const auto& d : deltas) {
    auto r = ckpt::incremental_apply(resolved, d);
    ASSERT_TRUE(r.ok());
    resolved = std::move(r).take();
  }
  EXPECT_EQ(resolved, state);
}

TEST_P(ImageProperty, RecoveryLinesNeverContainOrphans) {
  // Random dependency graphs: the computed line must be consistent — no
  // chosen checkpoint depends on an interval at or after the sender's line.
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    const uint32_t n = 2 + static_cast<uint32_t>(rng.below(5));
    std::vector<ckpt::CheckpointMeta> metas;
    std::map<uint32_t, uint32_t> latest;
    for (uint32_t p = 0; p < n; ++p) {
      const uint32_t top = 1 + static_cast<uint32_t>(rng.below(6));
      latest[p] = top;
      for (uint32_t c = 1; c <= top; ++c) {
        ckpt::CheckpointMeta meta;
        meta.rank = p;
        meta.index = c;
        for (size_t d = rng.below(4); d > 0; --d) {
          uint32_t q;
          do {
            q = static_cast<uint32_t>(rng.below(n));
          } while (q == p);
          // A message received before checkpoint c was sent in an interval
          // no later than the sender could have reached; bound loosely.
          meta.depends_on.push_back({q, static_cast<uint32_t>(rng.below(6))});
        }
        metas.push_back(std::move(meta));
      }
    }
    auto line = ckpt::compute_recovery_line(metas, latest);
    // Consistency: no orphan dependencies at the chosen indices.
    std::map<std::pair<uint32_t, uint32_t>, const ckpt::CheckpointMeta*> by_key;
    for (const auto& m : metas) by_key[{m.rank, m.index}] = &m;
    for (const auto& [rank, index] : line) {
      ASSERT_LE(index, latest[rank]);
      if (index == 0) continue;
      const auto* meta = by_key[{rank, index}];
      ASSERT_NE(meta, nullptr);
      for (const auto& dep : meta->depends_on) {
        auto it = line.find(dep.rank);
        if (it != line.end()) {
          EXPECT_LT(dep.interval, it->second)
              << "orphan: rank " << rank << "@" << index << " depends on (" << dep.rank
              << "," << dep.interval << ") but line(" << dep.rank << ")=" << it->second;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImageProperty,
                         ::testing::Values(5u, 21u, 333u, 4096u, 99991u));

}  // namespace
}  // namespace starfish
