// Diskless checkpoint storage (ckpt/replica.hpp): deterministic placement,
// warm re-replication, crash invalidation, commit-after-transfer, recovery
// fallback, and shard-count invariance of the replica tier.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ckpt/replica.hpp"
#include "ckpt/store.hpp"
#include "core/cluster.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace starfish::ckpt {
namespace {

using sim::milliseconds;
using sim::seconds;

// ---------------------------------------------------------- placement ----

TEST(ReplicaPlacement, ExcludesOwnerAndIsDeterministic) {
  const std::vector<sim::HostId> hosts = {0, 1, 2, 3};
  for (uint32_t rank = 0; rank < 4; ++rank) {
    const auto holders = replica_holders(hosts, rank, 2);
    ASSERT_EQ(holders.size(), 2u) << "rank " << rank;
    for (sim::HostId h : holders) {
      EXPECT_NE(h, hosts[rank]) << "rank " << rank << " replicated onto its own host";
    }
    EXPECT_EQ(holders, replica_holders(hosts, rank, 2)) << "placement not a pure function";
  }
}

TEST(ReplicaPlacement, RotatesByRankToSpreadLoad) {
  // Co-located ranks (both on host 0) must not pile their copies on the
  // same successors: the window rotates by rank index.
  const std::vector<sim::HostId> mixed = {0, 0, 1, 2, 3, 4};
  const auto h0 = replica_holders(mixed, 0, 2);
  const auto h1 = replica_holders(mixed, 1, 2);
  ASSERT_EQ(h0.size(), 2u);
  ASSERT_EQ(h1.size(), 2u);
  EXPECT_NE(h0, h1) << "co-located ranks chose identical holder sets";
}

TEST(ReplicaPlacement, CapsAtAvailableHosts) {
  EXPECT_EQ(replica_holders({0, 1}, 0, 3), (std::vector<sim::HostId>{1}));
  EXPECT_EQ(replica_holders({7, 7}, 1, 2), (std::vector<sim::HostId>{7}));  // alone
  EXPECT_TRUE(replica_holders({}, 0, 2).empty());
}

TEST(ReplicaPlacement, IgnoresDeadRanks) {
  const std::vector<sim::HostId> hosts = {0, sim::kInvalidHost, 2};
  const auto holders = replica_holders(hosts, 0, 2);
  EXPECT_EQ(holders, (std::vector<sim::HostId>{2}));
}

// -------------------------------------------------------- store level ----

struct ReplicaFixture {
  sim::Engine eng;
  net::Network net{eng};
  CheckpointStore store{eng};
  explicit ReplicaFixture(uint32_t replication = 2) {
    for (int i = 0; i < 4; ++i) net.add_host("node" + std::to_string(i));
    ReplicaOptions opts;
    opts.replication = replication;
    store.enable_replica_backend(net, opts);
    store.set_backend(CkptBackend::kReplica);
  }
  Image image(size_t pages, std::byte fill = std::byte{7}) const {
    Image img;
    img.kind = ImageKind::kPortable;
    img.payload = util::Bytes(pages * kPageBytes, fill);
    img.file_bytes = kPortableBaseBytes + img.payload.size();
    return img;
  }
};

TEST(ReplicaStoreTest, PutStoresCopiesWithoutTouchingDisk) {
  ReplicaFixture f;
  bool checked = false;
  f.net.host(0)->spawn("writer", [&] {
    f.store.put(*f.net.host(0), CkptKey{"app", 0, 1}, f.image(16), {1, 2});
    EXPECT_TRUE(f.store.contains(CkptKey{"app", 0, 1}));
    auto got = f.store.get(*f.net.host(3), CkptKey{"app", 0, 1});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload.size(), 16 * kPageBytes);
    checked = true;
  });
  f.eng.run();
  EXPECT_TRUE(checked);
  EXPECT_EQ(f.store.bytes_written(), 0u) << "replica put touched the disk tier";
  EXPECT_EQ(f.store.image_count(), 0u);
  EXPECT_EQ(f.store.replicas()->entry_count(), 1u);
  EXPECT_GT(f.store.replicas()->bytes_shipped(), 2 * 16 * kPageBytes);
}

TEST(ReplicaStoreTest, WarmRepeatPutShipsOnlyChangedPages) {
  ReplicaFixture f;
  uint64_t cold = 0, warm = 0;
  f.net.host(0)->spawn("writer", [&] {
    Image first = f.image(64);
    f.store.put(*f.net.host(0), CkptKey{"app", 0, 1}, std::move(first), {1, 2});
    cold = f.store.replicas()->bytes_shipped();
    Image second = f.image(64);
    second.payload[5 * kPageBytes] = std::byte{0xAB};  // dirty exactly one page
    f.store.put(*f.net.host(0), CkptKey{"app", 0, 2}, std::move(second), {1, 2});
    warm = f.store.replicas()->bytes_shipped() - cold;
  });
  f.eng.run();
  // Cold: 64 pages + header, per holder. Warm: 1 page + header, per holder.
  EXPECT_EQ(cold, 2 * (kReplicaHeaderBytes + 64 * kPageBytes));
  EXPECT_EQ(warm, 2 * (kReplicaHeaderBytes + 1 * kPageBytes));
}

TEST(ReplicaStoreTest, CrashInvalidatesExactlyTheCopiesTheHostHeld) {
  ReplicaFixture f;
  f.net.host(0)->spawn("writer", [&] {
    f.store.put(*f.net.host(0), CkptKey{"app", 0, 1}, f.image(4), {1, 2});
    f.store.put(*f.net.host(3), CkptKey{"app", 1, 1}, f.image(4), {0, 2});
  });
  f.eng.run();
  ASSERT_EQ(f.store.replicas()->entry_count(), 2u);

  f.net.crash_host(1);  // rank 0 loses one copy, rank 1 none
  EXPECT_TRUE(f.store.contains(CkptKey{"app", 0, 1}));
  EXPECT_TRUE(f.store.contains(CkptKey{"app", 1, 1}));
  EXPECT_TRUE(f.store.replicas()->validate());

  f.net.crash_host(2);  // rank 0's last copy dies; rank 1 survives on host 0
  EXPECT_FALSE(f.store.contains(CkptKey{"app", 0, 1}));
  EXPECT_TRUE(f.store.contains(CkptKey{"app", 1, 1}));
  EXPECT_EQ(f.store.replicas()->entry_count(), 1u);
  EXPECT_TRUE(f.store.replicas()->validate());

  bool checked = false;
  f.net.host(3)->spawn("reader", [&] {
    EXPECT_FALSE(f.store.get(*f.net.host(3), CkptKey{"app", 0, 1}).has_value());
    EXPECT_TRUE(f.store.get(*f.net.host(3), CkptKey{"app", 1, 1}).has_value());
    checked = true;
  });
  f.eng.run();
  EXPECT_TRUE(checked);
  EXPECT_FALSE(f.store.latest_stored("app", 0).has_value());
  EXPECT_EQ(f.store.latest_stored("app", 1), 1u);
}

// Commit-after-transfer: a writer that dies mid-transfer must leave no
// partial copy behind — the in-flight replica never becomes durable.
TEST(ReplicaStoreTest, WriterCrashMidTransferLeavesNoCopy) {
  ReplicaFixture f;
  f.net.host(0)->spawn("writer", [&] {
    f.store.put(*f.net.host(0), CkptKey{"app", 0, 1}, f.image(256), {1, 2});
  });
  // A 1 MB payload takes ~17 ms per copy at BIP rates; kill the writer well
  // inside the transfer.
  f.eng.schedule(milliseconds(1), [&] { f.net.crash_host(0); });
  f.eng.run();
  EXPECT_FALSE(f.store.contains(CkptKey{"app", 0, 1}));
  EXPECT_EQ(f.store.replicas()->entry_count(), 0u);
  EXPECT_EQ(f.store.replicas()->puts_started(), 1u);
  EXPECT_EQ(f.store.replicas()->puts_committed(), 0u);
  EXPECT_TRUE(f.store.replicas()->validate());
}

TEST(ReplicaStoreTest, HolderCrashMidTransferIsDroppedAtInstall) {
  ReplicaFixture f;
  f.net.host(0)->spawn("writer", [&] {
    f.store.put(*f.net.host(0), CkptKey{"app", 0, 1}, f.image(256), {1, 2});
  });
  f.eng.schedule(milliseconds(1), [&] { f.net.crash_host(1); });
  f.eng.run();
  // The transfer completed; only the surviving holder has the copy.
  EXPECT_EQ(f.store.replicas()->puts_committed(), 1u);
  EXPECT_TRUE(f.store.contains(CkptKey{"app", 0, 1}));
  EXPECT_TRUE(f.store.replicas()->validate());
  f.net.crash_host(2);
  EXPECT_FALSE(f.store.contains(CkptKey{"app", 0, 1}))
      << "a holder that died mid-transfer still counted as durable";
}

TEST(ReplicaStoreTest, MetaRidesWithTheEntryAndSharesItsFate) {
  ReplicaFixture f;
  f.net.host(0)->spawn("writer", [&] {
    f.store.put(*f.net.host(0), CkptKey{"u", 0, 1}, f.image(2), {1, 2});
    f.store.put_meta(CkptKey{"u", 0, 1}, util::Bytes(8, std::byte{3}));
  });
  f.eng.run();
  ASSERT_TRUE(f.store.checkpoint_meta(CkptKey{"u", 0, 1}).has_value());
  f.net.crash_host(1);
  f.net.crash_host(2);
  EXPECT_FALSE(f.store.checkpoint_meta(CkptKey{"u", 0, 1}).has_value())
      << "meta outlived every copy of its image";
}

// When every replica copy is lost, recovery must fall back to whatever the
// disk tier holds (images written before the backend switch).
TEST(ReplicaStoreTest, FallsBackToDiskImagesWhenReplicasDie) {
  ReplicaFixture f;
  f.store.set_backend(CkptBackend::kDisk);
  bool checked = false;
  f.net.host(0)->spawn("writer", [&] {
    f.store.put(*f.net.host(0), CkptKey{"app", 0, 1}, f.image(4, std::byte{1}));
    f.store.commit("app", 1);
    f.store.set_backend(CkptBackend::kReplica);
    f.store.put(*f.net.host(0), CkptKey{"app", 0, 2}, f.image(4, std::byte{2}), {1, 2});
    f.store.commit("app", 2);

    EXPECT_EQ(f.store.latest_recoverable("app", 1), 2u);
    f.net.crash_host(1);
    f.net.crash_host(2);
    // Epoch 2's copies are gone; the disk image of epoch 1 still recovers.
    EXPECT_EQ(f.store.latest_recoverable("app", 1), 1u);
    auto got = f.store.get(*f.net.host(0), CkptKey{"app", 0, 1});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload[0], std::byte{1});
    EXPECT_FALSE(f.store.get(*f.net.host(0), CkptKey{"app", 0, 2}).has_value());
    checked = true;
  });
  f.eng.run();
  EXPECT_TRUE(checked);
}

TEST(ReplicaStoreTest, ReportsUnrecoverableWhenNoTierHoldsACopy) {
  ReplicaFixture f;
  f.net.host(0)->spawn("writer", [&] {
    f.store.put(*f.net.host(0), CkptKey{"app", 0, 1}, f.image(4), {1, 2});
    f.store.commit("app", 1);
  });
  f.eng.run();
  EXPECT_EQ(f.store.latest_recoverable("app", 1), 1u);
  f.net.crash_host(1);
  f.net.crash_host(2);
  EXPECT_FALSE(f.store.latest_recoverable("app", 1).has_value());
}

// Incremental chains: an epoch is only recoverable if every link back to
// the full anchor survives.
TEST(ReplicaStoreTest, RecoverableFollowsIncrementalChains) {
  ReplicaFixture f;
  f.net.host(0)->spawn("writer", [&] {
    f.store.put(*f.net.host(0), CkptKey{"app", 0, 1}, f.image(8), {1});  // full anchor
    Image delta = f.image(1);
    delta.incremental = true;
    delta.base_epoch = 1;
    f.store.put(*f.net.host(0), CkptKey{"app", 0, 2}, std::move(delta), {2});
    f.store.commit("app", 2);
  });
  f.eng.run();
  EXPECT_TRUE(f.store.replicas()->recoverable(CkptKey{"app", 0, 2}));
  f.net.crash_host(1);  // the anchor dies; the delta alone is useless
  EXPECT_FALSE(f.store.replicas()->recoverable(CkptKey{"app", 0, 2}));
  EXPECT_FALSE(f.store.latest_recoverable("app", 1).has_value());
}

// ---------------------------------------- store instrumentation fixes ----

TEST(StoreInstrumentation, GcFoldsEpochTimingsIntoAggregate) {
  sim::Engine eng;
  net::Network net{eng};
  CheckpointStore store{eng};
  net.add_host("node0");
  eng.spawn("driver", [&] {
    store.note_begin("app", 1);
    eng.sleep(milliseconds(10));
    store.commit("app", 1);
    store.note_begin("app", 2);
    eng.sleep(milliseconds(30));
    store.commit("app", 2);
    store.gc("app", 2);
  });
  eng.run();
  // Epoch 1's per-epoch timestamps are folded away (unbounded-growth fix)…
  EXPECT_FALSE(store.epoch_duration("app", 1).has_value());
  EXPECT_TRUE(store.epoch_duration("app", 2).has_value());
  // …but the aggregate keeps both completed epochs.
  const auto stats = store.epoch_stats("app");
  EXPECT_EQ(stats.epochs, 2u);
  EXPECT_NEAR(sim::to_seconds(stats.total), 0.040, 1e-9);
}

TEST(StoreInstrumentation, AbortedBeginDoesNotPolluteReinitiatedEpoch) {
  sim::Engine eng;
  net::Network net{eng};
  CheckpointStore store{eng};
  net.add_host("node0");
  eng.spawn("driver", [&] {
    store.note_begin("app", 3);  // wave starts…
    eng.sleep(milliseconds(50));
    store.note_abort("app");  // …and is aborted by a view change
    eng.sleep(milliseconds(50));
    store.note_begin("app", 3);  // re-initiated after recovery
    eng.sleep(milliseconds(5));
    store.commit("app", 3);
  });
  eng.run();
  const auto d = store.epoch_duration("app", 3);
  ASSERT_TRUE(d.has_value());
  // Without note_abort the min-combine would keep the stale begin and
  // report 105 ms instead of the true 5 ms.
  EXPECT_NEAR(sim::to_seconds(*d), 0.005, 1e-9);
}

TEST(StoreInstrumentation, AbortKeepsCommittedEpochTimings) {
  sim::Engine eng;
  net::Network net{eng};
  CheckpointStore store{eng};
  net.add_host("node0");
  eng.spawn("driver", [&] {
    store.note_begin("app", 1);
    eng.sleep(milliseconds(7));
    store.commit("app", 1);
    store.note_abort("app");  // must not touch the completed epoch
  });
  eng.run();
  ASSERT_TRUE(store.epoch_duration("app", 1).has_value());
  EXPECT_NEAR(sim::to_seconds(*store.epoch_duration("app", 1)), 0.007, 1e-9);
}

}  // namespace
}  // namespace starfish::ckpt

// ------------------------------------------------------ cluster level ----

namespace starfish::core {
namespace {

using sim::milliseconds;
using sim::seconds;

std::string ring_program(int rounds, int spin) {
  return R"(
func main 0 2
  syscall rank
  store_local 0
  syscall world_size
  store_local 1
  push_int 0
  store_global 0
  push_int 0
  store_global 1
loop:
  load_global 0
  push_int )" + std::to_string(rounds) + R"(
  ge
  jmp_if_false body
  jmp done
body:
  push_int )" + std::to_string(spin) + R"(
  syscall spin
  load_local 0
  push_int 0
  eq
  jmp_if_false relay
  push_int 1
  load_global 1
  syscall send_to
  push_int -1
  syscall recv_from
  store_global 1
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
relay:
  push_int -1
  syscall recv_from
  load_local 0
  add
  store_global 1
  load_local 0
  push_int 1
  add
  load_local 1
  mod
  load_global 1
  syscall send_to
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
done:
  load_local 0
  push_int 0
  eq
  jmp_if_false finish
  load_global 1
  syscall print
finish:
  halt
)";
}

int64_t expected_token(uint32_t n, int rounds) {
  int64_t per = 0;
  for (uint32_t r = 1; r < n; ++r) per += r;
  return per * rounds;
}

bool output_contains(const std::vector<std::string>& lines, const std::string& needle) {
  return std::any_of(lines.begin(), lines.end(), [&](const std::string& l) {
    return l.find(needle) != std::string::npos;
  });
}

daemon::JobSpec ring_job(const std::string& name, uint32_t nprocs) {
  daemon::JobSpec j;
  j.name = name;
  j.binary = "ring";
  j.nprocs = nprocs;
  j.policy = daemon::FtPolicy::kRestart;
  j.protocol = daemon::CrProtocol::kStopAndSync;
  j.level = daemon::CkptLevel::kVm;
  j.ckpt_interval = milliseconds(50);
  return j;
}

// Faults-off equivalence: the backend changes where checkpoint bytes live
// and what their I/O costs, never what the application computes.
TEST(ReplicaCluster, FaultFreeOutputMatchesDiskBackend) {
  std::vector<std::string> outputs[2];
  for (int i = 0; i < 2; ++i) {
    ClusterOptions opts;
    opts.nodes = 4;
    opts.ckpt_backend = i == 0 ? ckpt::CkptBackend::kDisk : ckpt::CkptBackend::kReplica;
    Cluster cluster(std::move(opts));
    cluster.registry().register_vm("ring", ring_program(20, 50000));
    cluster.submit(ring_job("eq", 4));
    ASSERT_TRUE(cluster.run_until_done("eq"));
    outputs[i] = cluster.output("eq");
    if (i == 1) {
      EXPECT_EQ(cluster.store().bytes_written(), 0u) << "replica backend wrote to disk";
      EXPECT_GT(cluster.store().replicas()->bytes_shipped(), 0u);
      EXPECT_TRUE(cluster.store().replicas()->validate());
    }
  }
  EXPECT_EQ(outputs[0], outputs[1]);
}

// The headline diskless claim: a node crash recovers from in-memory copies
// on the survivors — zero disk reads — and still produces the golden
// answer.
TEST(ReplicaCluster, RingSurvivesNodeCrashRecoveringFromMemory) {
  ClusterOptions opts;
  opts.nodes = 4;
  opts.ckpt_backend = ckpt::CkptBackend::kReplica;
  Cluster cluster(std::move(opts));
  cluster.registry().register_vm("ring", ring_program(40, 100000));
  cluster.submit(ring_job("diskless", 4));
  cluster.run_for(milliseconds(300));
  ASSERT_TRUE(cluster.store().latest_committed("diskless").has_value())
      << "no epoch committed before the crash — nothing to recover from";
  cluster.crash_node(2);
  ASSERT_TRUE(cluster.run_until_done("diskless", seconds(240.0)));
  EXPECT_TRUE(
      output_contains(cluster.output("diskless"), std::to_string(expected_token(4, 40))));
  EXPECT_EQ(cluster.store().bytes_written(), 0u) << "recovery touched the disk tier";
  EXPECT_GT(cluster.daemon_at(0).restarts_performed(), 0u);
  std::string why;
  EXPECT_TRUE(cluster.store().replicas()->validate(&why)) << why;
}

// Degraded replication (satellite): kill exactly R hosts holding every copy
// of one rank's pages. With no disk images to fall back to, the line is
// unrecoverable — the daemons must restart from scratch and still finish,
// never deadlock.
TEST(ReplicaCluster, LosingAllCopiesFallsBackToScratchRestart) {
  ClusterOptions opts;
  opts.nodes = 5;
  opts.ckpt_backend = ckpt::CkptBackend::kReplica;
  opts.ckpt_replication = 2;
  Cluster cluster(std::move(opts));
  cluster.registry().register_vm("ring", ring_program(30, 100000));
  cluster.submit(ring_job("degraded", 5));
  cluster.run_for(milliseconds(300));
  ASSERT_TRUE(cluster.store().latest_committed("degraded").has_value());

  // Round-robin placement puts rank r on node r; the placement function
  // puts rank 0's R=2 copies on the next hosts in the ring: hosts 1 and 2.
  ASSERT_EQ(ckpt::replica_holders({0, 1, 2, 3, 4}, 0, 2),
            (std::vector<sim::HostId>{1, 2}));
  cluster.crash_node(1);
  cluster.crash_node(2);
  // Every copy of rank 0's images is gone and nothing was ever on disk.
  EXPECT_FALSE(cluster.store().latest_recoverable("degraded", 5).has_value());

  ASSERT_TRUE(cluster.run_until_done("degraded", sim::seconds(240.0)))
      << "recovery deadlocked instead of restarting from scratch";
  EXPECT_TRUE(
      output_contains(cluster.output("degraded"), std::to_string(expected_token(5, 30))));
  std::string why;
  EXPECT_TRUE(cluster.store().replicas()->validate(&why)) << why;
}

// Up to R-1 concurrent holder crashes leave >= 1 copy of everything: the
// line holds and recovery restores the committed epoch, not scratch.
TEST(ReplicaCluster, SurvivesRMinus1HolderCrashesWithLineIntact) {
  ClusterOptions opts;
  opts.nodes = 5;
  opts.ckpt_backend = ckpt::CkptBackend::kReplica;
  opts.ckpt_replication = 2;
  Cluster cluster(std::move(opts));
  cluster.registry().register_vm("ring", ring_program(30, 100000));
  cluster.submit(ring_job("partial", 5));
  cluster.run_for(milliseconds(300));
  const auto committed = cluster.store().latest_committed("partial");
  ASSERT_TRUE(committed.has_value());
  cluster.crash_node(1);  // R-1 = 1 concurrent holder crash
  EXPECT_EQ(cluster.store().latest_recoverable("partial", 5), committed)
      << "one crash (< R) must not move the recovery line";
  ASSERT_TRUE(cluster.run_until_done("partial", sim::seconds(240.0)));
  EXPECT_TRUE(
      output_contains(cluster.output("partial"), std::to_string(expected_token(5, 30))));
}

// Chaos tier: lossy control plane + node crash, replica backend. The
// commit-after-transfer invariant must hold at the end — no entry held by
// a dead host, no entry with zero holders.
TEST(ReplicaChaos, SurvivesFaultsAndCrashWithInvariantsIntact) {
  ClusterOptions opts;
  opts.nodes = 4;
  opts.seed = 11;
  opts.ckpt_backend = ckpt::CkptBackend::kReplica;
  Cluster cluster(std::move(opts));
  cluster.registry().register_vm("ring", ring_program(40, 100000));
  cluster.boot();
  cluster.faults().set_transport(
      net::TransportKind::kTcpIp,
      {.drop = 0.02, .duplicate = 0.02, .jitter = sim::microseconds(100)});
  cluster.submit(ring_job("chaos", 4));
  cluster.run_for(milliseconds(150));
  cluster.crash_node(2);
  ASSERT_TRUE(cluster.run_until_done("chaos", seconds(240.0)));
  EXPECT_TRUE(
      output_contains(cluster.output("chaos"), std::to_string(expected_token(4, 40))));
  const auto* replicas = cluster.store().replicas();
  ASSERT_NE(replicas, nullptr);
  std::string why;
  EXPECT_TRUE(replicas->validate(&why)) << why;
  EXPECT_LE(replicas->puts_committed(), replicas->puts_started());
  EXPECT_GT(replicas->puts_committed(), 0u);
}

// ------------------------------------------------- shard determinism ----

struct ReplicaRun {
  std::vector<std::string> output;
  uint64_t replica_hash = 0;
  uint64_t store_hash = 0;
  uint64_t shipped = 0;
  sim::Time end = 0;
};

ReplicaRun replica_run(unsigned shards) {
  ClusterOptions opts;
  opts.nodes = 4;
  opts.shards = shards;
  opts.ckpt_backend = ckpt::CkptBackend::kReplica;
  Cluster cluster(std::move(opts));
  cluster.registry().register_vm("ring", ring_program(30, 100000));
  cluster.submit(ring_job("shards", 4));
  cluster.run_for(milliseconds(300));
  cluster.crash_node(2);
  EXPECT_TRUE(cluster.run_until_done("shards", seconds(240.0)));
  ReplicaRun out;
  out.output = cluster.output("shards");
  out.replica_hash = cluster.store().replicas()->content_hash();
  out.store_hash = cluster.store().content_hash();
  out.shipped = cluster.store().replicas()->bytes_shipped();
  out.end = cluster.engine().now();
  return out;
}

TEST(ReplicaShardDeterminism, ContentHashIdenticalAt1248Shards) {
  const ReplicaRun base = replica_run(1);
  ASSERT_FALSE(base.output.empty());
  for (unsigned shards : {2u, 4u, 8u}) {
    const ReplicaRun run = replica_run(shards);
    EXPECT_EQ(run.replica_hash, base.replica_hash) << shards << " shards";
    EXPECT_EQ(run.store_hash, base.store_hash) << shards << " shards";
    EXPECT_EQ(run.shipped, base.shipped) << shards << " shards";
    EXPECT_EQ(run.output, base.output) << shards << " shards";
    EXPECT_EQ(run.end, base.end) << shards << " shards";
  }
}

}  // namespace
}  // namespace starfish::core
