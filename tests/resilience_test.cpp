// Failure-injection tests: crashes at adversarial moments — during
// checkpoints, during recovery, repeatedly — plus hostile input on the
// management protocol. The system must either recover with the exact right
// answer or fail the job cleanly; it must never hang or corrupt state.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "util/rng.hpp"

namespace starfish::core {
namespace {

using daemon::AppPhase;
using daemon::CkptLevel;
using daemon::CrProtocol;
using daemon::FtPolicy;
using daemon::JobSpec;
using sim::milliseconds;
using sim::seconds;

std::string ring_program(int rounds, int spin) {
  return R"(
func main 0 2
  syscall rank
  store_local 0
  syscall world_size
  store_local 1
  push_int 0
  store_global 0
  push_int 0
  store_global 1
loop:
  load_global 0
  push_int )" + std::to_string(rounds) + R"(
  ge
  jmp_if_false body
  jmp done
body:
  push_int )" + std::to_string(spin) + R"(
  syscall spin
  load_local 0
  push_int 0
  eq
  jmp_if_false relay
  push_int 1
  load_global 1
  syscall send_to
  push_int -1
  syscall recv_from
  store_global 1
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
relay:
  push_int -1
  syscall recv_from
  load_local 0
  add
  store_global 1
  load_local 0
  push_int 1
  add
  load_local 1
  mod
  load_global 1
  syscall send_to
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
done:
  load_local 0
  push_int 0
  eq
  jmp_if_false finish
  load_global 1
  syscall print
finish:
  halt
)";
}

int64_t expected_token(uint32_t n, int rounds) {
  int64_t per = 0;
  for (uint32_t r = 1; r < n; ++r) per += r;
  return per * rounds;
}

bool output_contains(const std::vector<std::string>& lines, const std::string& needle) {
  return std::any_of(lines.begin(), lines.end(),
                     [&](const std::string& l) { return l.find(needle) != std::string::npos; });
}

struct Fixture {
  Cluster cluster;
  explicit Fixture(size_t nodes, int rounds = 60) : cluster([&] {
    ClusterOptions opts;
    opts.nodes = nodes;
    return opts;
  }()) {
    cluster.registry().register_vm("ring", ring_program(rounds, 100000));
    cluster.boot();
  }
  JobSpec job(const std::string& name, uint32_t nprocs) {
    JobSpec j;
    j.name = name;
    j.binary = "ring";
    j.nprocs = nprocs;
    j.policy = FtPolicy::kRestart;
    j.protocol = CrProtocol::kStopAndSync;
    j.level = CkptLevel::kVm;
    j.ckpt_interval = milliseconds(50);
    return j;
  }
};

// ------------------------------------------------- adversarial crashes ----

TEST(Resilience, CrashDuringCheckpointRecoversFromPreviousEpoch) {
  // Kill a node exactly while an epoch is being written; the half-written
  // epoch never commits and recovery uses the previous one.
  Fixture f(4);
  f.cluster.submit(f.job("midckpt", 4));
  // First commit lands ~0.07 s in; the next checkpoint starts at ~0.10 s.
  // Crash at 0.105 s: inside the second checkpoint's capture/write window.
  f.cluster.run_for(milliseconds(105));
  const auto committed_before = f.cluster.store().latest_committed("midckpt");
  f.cluster.crash_node(2);
  ASSERT_TRUE(f.cluster.run_until_done("midckpt"));
  EXPECT_TRUE(output_contains(f.cluster.output("midckpt"),
                              std::to_string(expected_token(4, 60))));
  (void)committed_before;
}

TEST(Resilience, CrashOfCheckpointInitiatorNode) {
  // Rank 0 initiates every coordinated checkpoint; killing its node tests
  // recovery of the initiator role itself.
  Fixture f(4);
  f.cluster.submit(f.job("initiator", 4));
  f.cluster.run_for(milliseconds(120));
  f.cluster.crash_node(0);  // rank 0's node
  ASSERT_TRUE(f.cluster.run_until_done("initiator"));
  EXPECT_TRUE(output_contains(f.cluster.output("initiator"),
                              std::to_string(expected_token(4, 60))));
  // Checkpointing continues after the restart (rank 0 lives elsewhere now).
  ASSERT_TRUE(f.cluster.store().latest_committed("initiator").has_value());
}

TEST(Resilience, SecondCrashDuringRecovery) {
  // Kill another node while the restart from the first failure is under way.
  Fixture f(5, 120);
  f.cluster.submit(f.job("cascade", 5));
  f.cluster.run_for(milliseconds(150));
  f.cluster.crash_node(4);
  f.cluster.run_for(milliseconds(280));  // detection ~250 ms: recovery starting
  f.cluster.crash_node(3);
  ASSERT_TRUE(f.cluster.run_until_done("cascade"));
  EXPECT_TRUE(output_contains(f.cluster.output("cascade"),
                              std::to_string(expected_token(5, 120))));
}

TEST(Resilience, SimultaneousDoubleCrash) {
  Fixture f(5, 80);
  f.cluster.submit(f.job("double", 5));
  f.cluster.run_for(milliseconds(150));
  f.cluster.crash_node(1);
  f.cluster.crash_node(3);
  ASSERT_TRUE(f.cluster.run_until_done("double"));
  EXPECT_TRUE(output_contains(f.cluster.output("double"),
                              std::to_string(expected_token(5, 80))));
}

TEST(Resilience, RepeatedCrashesEventuallyStillFinish) {
  // Three separate failures over the job's life, each recovered.
  Fixture f(6, 200);
  f.cluster.submit(f.job("marathon", 6));
  f.cluster.run_for(milliseconds(200));
  f.cluster.crash_node(5);
  f.cluster.run_for(milliseconds(700));
  f.cluster.crash_node(4);
  f.cluster.run_for(milliseconds(700));
  f.cluster.crash_node(3);
  ASSERT_TRUE(f.cluster.run_until_done("marathon", seconds(240.0)));
  EXPECT_TRUE(output_contains(f.cluster.output("marathon"),
                              std::to_string(expected_token(6, 200))));
}

TEST(Resilience, CrashWithChandyLamportMidSnapshot) {
  Fixture f(4);
  auto job = f.job("clmid", 4);
  job.protocol = CrProtocol::kChandyLamport;
  f.cluster.submit(job);
  f.cluster.run_for(milliseconds(55));  // inside the first snapshot window
  f.cluster.crash_node(1);
  ASSERT_TRUE(f.cluster.run_until_done("clmid"));
  EXPECT_TRUE(output_contains(f.cluster.output("clmid"),
                              std::to_string(expected_token(4, 60))));
}

TEST(Resilience, SuspendResumeAroundCheckpointAndCrash) {
  Fixture f(4, 80);
  f.cluster.submit(f.job("susp", 4));
  f.cluster.run_for(milliseconds(80));
  f.cluster.daemon_at(0).suspend_app("susp");
  f.cluster.run_for(milliseconds(300));
  EXPECT_EQ(f.cluster.phase("susp"), AppPhase::kSuspended);
  f.cluster.daemon_at(0).resume_app("susp");
  f.cluster.run_for(milliseconds(100));
  f.cluster.crash_node(2);
  ASSERT_TRUE(f.cluster.run_until_done("susp"));
  EXPECT_TRUE(output_contains(f.cluster.output("susp"),
                              std::to_string(expected_token(4, 80))));
}

TEST(Resilience, CrashNodeHostingTwoRanks) {
  // Co-located ranks (5 ranks on 3 nodes): one node failure kills two
  // processes at once.
  Fixture f(3, 80);
  f.cluster.submit(f.job("colo", 5));
  f.cluster.run_for(milliseconds(150));
  f.cluster.crash_node(1);  // hosts ranks 1 and 4
  ASSERT_TRUE(f.cluster.run_until_done("colo"));
  EXPECT_TRUE(output_contains(f.cluster.output("colo"),
                              std::to_string(expected_token(5, 80))));
}

TEST(Resilience, UnrelatedAppUnaffectedByCrash) {
  // Two apps on disjoint placements: killing a node of one must not disturb
  // the other (the lightweight-group isolation property, end to end).
  Fixture f(6, 60);
  auto a = f.job("appA", 3);  // ranks on nodes 0,1,2
  f.cluster.submit(a);
  f.cluster.run_for(milliseconds(30));
  // Disable the first three nodes so appB lands on nodes 3,4,5.
  f.cluster.daemon_at(0).node_ctl(0, false);
  f.cluster.daemon_at(0).node_ctl(1, false);
  f.cluster.daemon_at(0).node_ctl(2, false);
  f.cluster.run_for(milliseconds(30));
  auto b = f.job("appB", 3);
  f.cluster.submit(b);
  f.cluster.run_for(milliseconds(60));
  ASSERT_FALSE(f.cluster.daemon_at(3).local_ranks("appB").empty());

  f.cluster.crash_node(4);  // hits appB only
  ASSERT_TRUE(f.cluster.run_until_done("appA"));
  ASSERT_TRUE(f.cluster.run_until_done("appB"));
  // appA never restarted; appB did.
  EXPECT_EQ(f.cluster.daemon_at(0).restarts_performed(), 0u);
  EXPECT_GE(f.cluster.daemon_at(3).restarts_performed(), 1u);
}

// ------------------------------------------------ management protocol ----

TEST(Resilience, ManagementProtocolSurvivesGarbage) {
  Fixture f(2);
  // None of these may crash the daemon or leak a session.
  auto replies = f.cluster.client_session(
      0, {"", "   ", "LOGIN", "LOGIN a", "SUBMIT", "SUBMIT x", "NODE", "NODE FROB 1",
          "NODE DISABLE abc", "SET", "GET", "\t\t", "STATUS", "!!!###$$$",
          "LOGIN u p USER", "SUBMIT j ring -3", "SUBMIT j ring 2 BOGUS=1",
          "SUBMIT j ring 2 POLICY=wat", "SUBMIT j ring 2 INTERVAL_MS=xyz"});
  for (size_t i = 1; i < replies.size(); ++i) {
    if (replies[i].rfind("OK", 0) == 0) continue;  // the LOGIN succeeds
    EXPECT_EQ(replies[i].rfind("ERR", 0), 0u) << "reply " << i << ": " << replies[i];
  }
  // The daemon still works afterwards.
  auto ok = f.cluster.client_session(0, {"LOGIN u p USER", "SUBMIT good ring 2"});
  EXPECT_EQ(ok[2], "OK submitted good");
  ASSERT_TRUE(f.cluster.run_until_done("good"));
}

TEST(Resilience, ClientReconnectsToAnotherDaemonAfterCrash) {
  // Paper section 3.1.3: a client whose daemon died reconnects to another
  // node and continues working.
  Fixture f(3);
  auto first = f.cluster.client_session(0, {"LOGIN alice pw USER", "SUBMIT j1 ring 2"});
  EXPECT_EQ(first[2], "OK submitted j1");
  f.cluster.run_for(milliseconds(50));
  f.cluster.crash_node(0);
  f.cluster.run_for(milliseconds(600));  // membership reconfigures
  auto second = f.cluster.client_session(1, {"LOGIN alice pw USER", "STATUS j1", "NODES"});
  EXPECT_NE(second[2].find("OK j1"), std::string::npos);
  EXPECT_NE(second[3].find("2 node(s)"), std::string::npos);
}

// -------------------------------------------- randomized crash sweeps ----

class CrashSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, daemon::CrProtocol>> {};

TEST_P(CrashSweep, RandomCrashTimeAndVictimAlwaysRecovers) {
  util::Rng rng(std::get<0>(GetParam()));
  Fixture f(4, 80);
  auto job = f.job("sweep", 4);
  job.protocol = std::get<1>(GetParam());
  f.cluster.submit(job);
  const auto crash_at = milliseconds(static_cast<int64_t>(30 + rng.below(350)));
  const auto victim = static_cast<sim::HostId>(rng.below(4));
  f.cluster.run_for(crash_at);
  if (f.cluster.phase("sweep") == AppPhase::kCompleted) return;  // too late to crash
  f.cluster.crash_node(victim);
  ASSERT_TRUE(f.cluster.run_until_done("sweep"))
      << "crash of node " << victim << " at " << sim::to_seconds(crash_at) << "s under "
      << daemon::protocol_name(std::get<1>(GetParam()));
  EXPECT_TRUE(output_contains(f.cluster.output("sweep"),
                              std::to_string(expected_token(4, 80))));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByProtocol, CrashSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u),
                       ::testing::Values(CrProtocol::kStopAndSync,
                                         CrProtocol::kChandyLamport,
                                         CrProtocol::kUncoordinated)));

}  // namespace
}  // namespace starfish::core
