// A long end-to-end scenario exercising most of the system in one run —
// the kind of day-in-the-life sequence a real cluster sees: multiple
// applications with different policies and protocols, cluster
// reconfiguration, a node added at runtime, a migration, crashes, and
// management sessions — all against one deterministic timeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/cluster.hpp"

namespace starfish::core {
namespace {

using daemon::AppPhase;
using daemon::CkptLevel;
using daemon::CrProtocol;
using daemon::FtPolicy;
using daemon::JobSpec;
using sim::milliseconds;
using sim::seconds;

std::string ring_program(int rounds, int spin) {
  return R"(
func main 0 2
  syscall rank
  store_local 0
  syscall world_size
  store_local 1
  push_int 0
  store_global 0
  push_int 0
  store_global 1
loop:
  load_global 0
  push_int )" + std::to_string(rounds) + R"(
  ge
  jmp_if_false body
  jmp done
body:
  push_int )" + std::to_string(spin) + R"(
  syscall spin
  load_local 0
  push_int 0
  eq
  jmp_if_false relay
  push_int 1
  load_global 1
  syscall send_to
  push_int -1
  syscall recv_from
  store_global 1
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
relay:
  push_int -1
  syscall recv_from
  load_local 0
  add
  store_global 1
  load_local 0
  push_int 1
  add
  load_local 1
  mod
  load_global 1
  syscall send_to
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
done:
  load_local 0
  push_int 0
  eq
  jmp_if_false finish
  load_global 1
  syscall print
finish:
  halt
)";
}

bool output_contains(const std::vector<std::string>& lines, const std::string& needle) {
  return std::any_of(lines.begin(), lines.end(),
                     [&](const std::string& l) { return l.find(needle) != std::string::npos; });
}

TEST(Scenario, DayInTheLifeOfACluster) {
  ClusterOptions opts;
  opts.nodes = 5;
  Cluster cluster(opts);
  cluster.registry().register_vm("ring", ring_program(600, 100000));
  cluster.registry().register_vm("shortring", ring_program(30, 50000));
  cluster.boot();

  // 1. An admin reconfigures the cluster and disables a flaky node.
  auto admin = cluster.client_session(
      0, {"LOGIN root starfish ADMIN", "SET maintenance.window 02:00", "NODE DISABLE 4"});
  EXPECT_EQ(admin[1], "OK session management");
  cluster.run_for(milliseconds(30));

  // 2. Alice submits a long checkpointed job; Bob a short unprotected one.
  JobSpec longjob;
  longjob.name = "sim-long";
  longjob.binary = "ring";
  longjob.nprocs = 4;
  longjob.policy = FtPolicy::kRestart;
  longjob.protocol = CrProtocol::kStopAndSync;
  longjob.level = CkptLevel::kVm;
  longjob.ckpt_interval = milliseconds(100);
  longjob.forked_ckpt = true;
  longjob.owner = "alice";
  cluster.submit(longjob);

  JobSpec shortjob;
  shortjob.name = "quick";
  shortjob.binary = "shortring";
  shortjob.nprocs = 3;
  shortjob.owner = "bob";
  cluster.submit(shortjob);

  // The disabled node hosts nothing.
  cluster.run_for(milliseconds(80));
  EXPECT_TRUE(cluster.daemon_at(4).local_ranks("sim-long").empty());
  EXPECT_TRUE(cluster.daemon_at(4).local_ranks("quick").empty());

  // 3. The short job finishes untouched.
  ASSERT_TRUE(cluster.run_until_done("quick"));
  EXPECT_TRUE(output_contains(cluster.output("quick"), "90"));  // 30 * (1+2)

  // 4. A new workstation joins; the admin re-enables node 4 too.
  const sim::HostId newcomer = cluster.add_node();
  cluster.daemon_at(0).node_ctl(4, true);
  cluster.run_for(seconds(1.0));
  EXPECT_EQ(cluster.daemon_at(0).group().view().size(), 6u);

  // 5. Alice migrates rank 2 onto the fresh node.
  cluster.daemon_at(2).migrate("sim-long", 2, newcomer);
  cluster.run_for(milliseconds(400));
  EXPECT_EQ(cluster.daemon_for_host(newcomer).local_ranks("sim-long"),
            (std::vector<uint32_t>{2}));

  // 6. Disaster: two nodes die, seconds apart, while the job runs.
  cluster.crash_node(1);
  cluster.run_for(milliseconds(600));
  cluster.crash_node(3);

  // 7. The job still completes with the exact right answer.
  ASSERT_TRUE(cluster.run_until_done("sim-long", seconds(240.0)));
  EXPECT_TRUE(output_contains(cluster.output("sim-long"), std::to_string(600 * (1 + 2 + 3))));

  // 8. A user checks the aftermath through a surviving daemon that hosts
  // part of the application (rank 0's node sees every completion event).
  auto status = cluster.client_session(
      0, {"LOGIN alice pw USER", "STATUS sim-long", "PS", "NODES"});
  EXPECT_NE(status[2].find("phase=completed"), std::string::npos);
  EXPECT_NE(status[4].find("4 node(s)"), std::string::npos);  // 6 - 2 crashed

  // 9. Cleanup: Alice deletes her job record.
  auto del = cluster.client_session(0, {"LOGIN alice pw USER", "DELETE sim-long"});
  EXPECT_EQ(del[2], "OK delete requested");
  cluster.run_for(milliseconds(100));
  EXPECT_EQ(cluster.phase("sim-long"), AppPhase::kDeleted);
}

TEST(Scenario, MigrateViaManagementProtocol) {
  ClusterOptions opts;
  opts.nodes = 4;
  Cluster cluster(opts);
  cluster.registry().register_vm("ring", ring_program(300, 100000));
  cluster.boot();
  JobSpec job;
  job.name = "mj";
  job.binary = "ring";
  job.nprocs = 3;  // nodes 0-2; node 3 idle
  job.policy = FtPolicy::kRestart;
  job.protocol = CrProtocol::kStopAndSync;
  job.owner = "alice";
  cluster.submit(job);
  cluster.run_for(milliseconds(80));

  // Wrong daemon: node 3 does not host the app.
  auto nope = cluster.client_session(3, {"LOGIN alice pw USER", "MIGRATE mj 1 3"});
  EXPECT_NE(nope[2].find("ERR not hosted"), std::string::npos);
  // Wrong owner.
  auto mallory = cluster.client_session(1, {"LOGIN mallory pw USER", "MIGRATE mj 1 3"});
  EXPECT_EQ(mallory[2], "ERR not your job");
  // Right daemon, right owner.
  auto ok = cluster.client_session(1, {"LOGIN alice pw USER", "MIGRATE mj 1 3"});
  EXPECT_EQ(ok[2], "OK migration started");

  ASSERT_TRUE(cluster.run_until_done("mj", seconds(120.0)));
  EXPECT_EQ(cluster.daemon_at(3).local_ranks("mj"), (std::vector<uint32_t>{1}));
  EXPECT_TRUE(output_contains(cluster.output("mj"), std::to_string(300 * (1 + 2))));
}

}  // namespace
}  // namespace starfish::core
