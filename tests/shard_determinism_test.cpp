// Shard-count invariance of the full stack (PR 6).
//
// The conservative time-window scheduler (DESIGN.md section 13) promises the
// *bit-identical* simulation at any shard count: same seed + same workload →
// same virtual history whether hosts run on one thread or eight. The engine
// golden test pins that for the sim/GCS layers; this suite pins it end to
// end — MPI application, daemon group, fault injection, node crash, restart
// from checkpoint — comparing every observable artifact a run produces:
// final virtual time, event count, application output, the fault injector's
// merged trace, the checkpoint store's full content hash, and the exported
// virtual-time trace.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "obs/obs.hpp"

namespace starfish {
namespace {

using daemon::CkptLevel;
using daemon::CrProtocol;
using daemon::FtPolicy;
using daemon::JobSpec;

std::string ring_program(int rounds, int spin) {
  return R"(
func main 0 2
  syscall rank
  store_local 0
  syscall world_size
  store_local 1
  push_int 0
  store_global 0
  push_int 0
  store_global 1
loop:
  load_global 0
  push_int )" + std::to_string(rounds) + R"(
  ge
  jmp_if_false body
  jmp done
body:
  push_int )" + std::to_string(spin) + R"(
  syscall spin
  load_local 0
  push_int 0
  eq
  jmp_if_false relay
  push_int 1
  load_global 1
  syscall send_to
  push_int -1
  syscall recv_from
  store_global 1
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
relay:
  push_int -1
  syscall recv_from
  load_local 0
  add
  store_global 1
  load_local 0
  push_int 1
  add
  load_local 1
  mod
  load_global 1
  syscall send_to
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
done:
  load_local 0
  push_int 0
  eq
  jmp_if_false finish
  load_global 1
  syscall print
finish:
  halt
)";
}

struct Artifacts {
  bool done = false;
  sim::Time end_time = 0;
  uint64_t events = 0;
  std::vector<std::string> output;
  std::vector<std::string> fault_trace;
  uint64_t ckpt_hash = 0;
  size_t ckpt_images = 0;
  uint64_t ckpt_bytes = 0;
  std::string trace_json;
};

/// The obs_test chaos scenario, parameterized by shard count: lossy TCP,
/// periodic coordinated checkpoints, a mid-run node crash, restart-policy
/// recovery of all four ranks from the committed epoch.
Artifacts chaos_run(unsigned shards, uint64_t seed) {
  obs::Hub hub;
  hub.tracer.set_enabled(true);
  core::ClusterOptions opts;
  opts.nodes = 4;
  opts.seed = seed;
  opts.shards = shards;
  core::Cluster cluster(opts);
  cluster.engine().set_obs(&hub);
  cluster.registry().register_vm("ring", ring_program(40, 100000));
  cluster.boot();
  cluster.faults().set_transport(
      net::TransportKind::kTcpIp,
      {.drop = 0.01, .duplicate = 0.01, .delay = sim::microseconds(20)});
  JobSpec job;
  job.name = "shardring";
  job.binary = "ring";
  job.nprocs = 4;
  job.policy = FtPolicy::kRestart;
  job.protocol = CrProtocol::kStopAndSync;
  job.level = CkptLevel::kVm;
  job.ckpt_interval = sim::milliseconds(50);
  cluster.submit(job);
  cluster.run_for(sim::milliseconds(150));
  cluster.crash_node(2);
  Artifacts a;
  a.done = cluster.run_until_done("shardring");
  a.end_time = cluster.engine().now();
  a.events = cluster.engine().events_executed();
  a.output = cluster.output("shardring");
  a.fault_trace = cluster.faults().trace();
  // Count whichever tier absorbed the writes: under
  // STARFISH_CKPT_BACKEND=replica (the CI diskless pass) images live in
  // the replica store and the disk maps stay empty.
  a.ckpt_hash = cluster.store().content_hash();
  a.ckpt_images = cluster.store().image_count();
  a.ckpt_bytes = cluster.store().bytes_written();
  if (const auto* replicas = cluster.store().replicas()) {
    a.ckpt_hash ^= replicas->content_hash();
    a.ckpt_images += replicas->entry_count();
    a.ckpt_bytes += replicas->bytes_shipped();
  }
  a.trace_json = hub.tracer.to_chrome_json();
  return a;
}

void expect_identical(const Artifacts& got, const Artifacts& want, unsigned shards) {
  EXPECT_EQ(got.end_time, want.end_time) << "shards=" << shards;
  EXPECT_EQ(got.events, want.events) << "shards=" << shards;
  EXPECT_EQ(got.output, want.output) << "shards=" << shards;
  EXPECT_EQ(got.fault_trace, want.fault_trace) << "shards=" << shards;
  EXPECT_EQ(got.ckpt_hash, want.ckpt_hash) << "shards=" << shards;
  EXPECT_EQ(got.ckpt_images, want.ckpt_images) << "shards=" << shards;
  EXPECT_EQ(got.ckpt_bytes, want.ckpt_bytes) << "shards=" << shards;
  EXPECT_EQ(got.trace_json == want.trace_json, true) << "shards=" << shards;
}

TEST(ShardDeterminism, ChaosRecoveryRunIsShardCountInvariant) {
  const Artifacts seq = chaos_run(1, 21);
  ASSERT_TRUE(seq.done);
  ASSERT_FALSE(seq.fault_trace.empty());  // faults actually fired
  ASSERT_GT(seq.ckpt_images, 0u);         // checkpoints actually committed
  for (const unsigned shards : {2u, 4u, 8u}) {
    const Artifacts got = chaos_run(shards, 21);
    ASSERT_TRUE(got.done) << "shards=" << shards;
    expect_identical(got, seq, shards);
  }
}

TEST(ShardDeterminism, DifferentSeedsStillDiverge) {
  // Sanity for the suite itself: the artifact comparison is strong enough to
  // notice a genuinely different history (otherwise every assertion above
  // would pass vacuously).
  const Artifacts a = chaos_run(4, 21);
  const Artifacts b = chaos_run(4, 22);
  EXPECT_NE(a.fault_trace, b.fault_trace);
}

// ----------------------------------------------------------------------
// Shard-aware clock (satellite of PR 6): Engine::now() must answer with the
// *calling shard's* clock during parallel phases — daemon and GCS code
// running on host fibers timestamps messages and timers with it — and
// run_for() must land every shard exactly on the requested boundary.

TEST(ShardClock, NowIsMonotonicOnEveryHostAcrossRunForBoundaries) {
  sim::Engine eng(/*seed=*/5);
  eng.set_shards(4);
  constexpr int kHosts = 8;
  std::vector<sim::HostPtr> hosts;
  std::vector<std::vector<sim::Time>> samples(kHosts);
  for (int h = 0; h < kHosts; ++h) {
    hosts.push_back(std::make_shared<sim::Host>(eng, static_cast<sim::HostId>(h),
                                                "h" + std::to_string(h),
                                                sim::default_machine()));
  }
  for (int h = 0; h < kHosts; ++h) {
    hosts[h]->spawn("sampler", [&eng, &samples, h] {
      for (int i = 0; i < 200; ++i) {
        samples[h].push_back(eng.now());
        eng.sleep(sim::microseconds(7 + (h * 13 + i) % 91));
        samples[h].push_back(eng.now());
      }
    });
  }
  // Odd increments: deliberately not multiples of the lookahead window so
  // run_for boundaries cut through epochs.
  sim::Time expected = eng.now();
  for (const auto d : {sim::microseconds(333), sim::milliseconds(1),
                       sim::microseconds(4999), sim::milliseconds(20)}) {
    eng.run_for(d);
    expected += d;
    EXPECT_EQ(eng.now(), expected);  // serial clock lands exactly on the boundary
  }
  eng.run();
  for (int h = 0; h < kHosts; ++h) {
    ASSERT_EQ(samples[h].size(), 400u) << "host " << h;
    for (size_t i = 1; i < samples[h].size(); ++i) {
      ASSERT_LE(samples[h][i - 1], samples[h][i]) << "host " << h << " sample " << i;
    }
  }
}

TEST(ShardClock, DaemonTimestampsMatchSequentialRun) {
  // The daemon/GCS layers call Engine::now() from their own host's fibers
  // (heartbeats, view timers, checkpoint intervals). If any of those read a
  // stale global clock at shards > 1, the recorded histories would differ.
  auto boot_and_stamp = [](unsigned shards) {
    core::ClusterOptions opts;
    opts.nodes = 6;
    opts.seed = 13;
    opts.shards = shards;
    core::Cluster cluster(opts);
    cluster.boot();
    cluster.run_for(sim::milliseconds(500));
    return std::make_pair(cluster.engine().now(), cluster.engine().events_executed());
  };
  const auto seq = boot_and_stamp(1);
  const auto par = boot_and_stamp(4);
  EXPECT_EQ(seq.first, par.first);
  EXPECT_EQ(seq.second, par.second);
}

}  // namespace
}  // namespace starfish
