#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/disk.hpp"
#include "sim/engine.hpp"
#include "sim/host.hpp"
#include "sim/machine.hpp"
#include "sim/sync.hpp"

namespace starfish::sim {
namespace {

// --------------------------------------------------------------- Engine ----

TEST(Engine, EventsRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule(milliseconds(3), [&] { order.push_back(3); });
  eng.schedule(milliseconds(1), [&] { order.push_back(1); });
  eng.schedule(milliseconds(2), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), milliseconds(3));
}

TEST(Engine, SameTimeEventsRunInScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.schedule(microseconds(5), [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, FiberSleepAdvancesVirtualTime) {
  Engine eng;
  Time woke = -1;
  eng.spawn("sleeper", [&] {
    eng.sleep(seconds(2.5));
    woke = eng.now();
  });
  eng.run();
  EXPECT_EQ(woke, seconds(2.5));
}

TEST(Engine, NestedSpawnAndYield) {
  Engine eng;
  std::vector<std::string> log;
  eng.spawn("a", [&] {
    log.push_back("a1");
    eng.spawn("b", [&] {
      log.push_back("b1");
      eng.yield();
      log.push_back("b2");
    });
    eng.yield();
    log.push_back("a2");
  });
  eng.run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "a1");
  // b starts after a yields (scheduled later at the same timestamp).
  EXPECT_EQ(log[1], "b1");
}

TEST(Engine, RunForStopsAtDeadline) {
  Engine eng;
  int fired = 0;
  eng.schedule(seconds(1.0), [&] { ++fired; });
  eng.schedule(seconds(3.0), [&] { ++fired; });
  eng.run_for(seconds(2.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), seconds(2.0));
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine eng;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      eng.spawn("f", [&eng, &order, i] {
        eng.sleep(microseconds((i * 37) % 11));
        order.push_back(i);
      });
    }
    eng.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, KillBlockedFiberUnwindsRaii) {
  Engine eng;
  bool cleaned_up = false;
  bool reached_end = false;
  auto f = eng.spawn("victim", [&] {
    struct Cleanup {
      bool& flag;
      ~Cleanup() { flag = true; }
    } guard{cleaned_up};
    eng.sleep(seconds(100));
    reached_end = true;
  });
  eng.schedule(seconds(1), [&] { eng.kill(f); });
  eng.run();
  EXPECT_TRUE(cleaned_up);
  EXPECT_FALSE(reached_end);
  EXPECT_TRUE(f->finished());
}

TEST(Engine, KillRunningFiberThrowsAtNextBlock) {
  Engine eng;
  int steps = 0;
  FiberPtr f;
  f = eng.spawn("loop", [&] {
    for (;;) {
      ++steps;
      eng.sleep(milliseconds(10));
    }
  });
  eng.schedule(milliseconds(35), [&] { eng.kill(f); });
  eng.run();
  EXPECT_TRUE(f->finished());
  EXPECT_EQ(steps, 4);  // t=0,10,20,30
}

TEST(Engine, KillBeforeStartNeverRuns) {
  Engine eng;
  bool ran = false;
  auto f = eng.spawn("late", [&] { ran = true; }, seconds(5));
  eng.schedule(seconds(1), [&] { eng.kill(f); });
  eng.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, BlockUntilTimesOut) {
  Engine eng;
  WakeReason reason = WakeReason::kSignal;
  eng.spawn("waiter", [&] { reason = eng.block_until(eng.now() + seconds(1)); });
  eng.run();
  EXPECT_EQ(reason, WakeReason::kTimer);
  EXPECT_EQ(eng.now(), seconds(1.0));
}

TEST(Engine, ManyFibersStress) {
  Engine eng;
  int done = 0;
  for (int i = 0; i < 500; ++i) {
    eng.spawn("w", [&eng, &done, i] {
      for (int k = 0; k < 10; ++k) eng.sleep(microseconds(i % 7 + 1));
      ++done;
    });
  }
  eng.run();
  EXPECT_EQ(done, 500);
}

// -------------------------------------------------------------- Channel ----

TEST(Channel, SendThenRecv) {
  Engine eng;
  Channel<int> ch(eng);
  int got = 0;
  eng.spawn("reader", [&] { got = ch.recv().value.value(); });
  eng.spawn("writer", [&] {
    eng.sleep(milliseconds(5));
    ch.send(42);
  });
  eng.run();
  EXPECT_EQ(got, 42);
}

TEST(Channel, FifoOrderManyItems) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<int> got;
  eng.spawn("reader", [&] {
    for (int i = 0; i < 100; ++i) got.push_back(ch.recv().value.value());
  });
  eng.spawn("writer", [&] {
    for (int i = 0; i < 100; ++i) {
      ch.send(i);
      if (i % 7 == 0) eng.yield();
    }
  });
  eng.run();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(Channel, RecvTimeout) {
  Engine eng;
  Channel<int> ch(eng);
  RecvStatus status = RecvStatus::kOk;
  eng.spawn("reader", [&] { status = ch.recv(eng.now() + milliseconds(50)).status; });
  eng.run();
  EXPECT_EQ(status, RecvStatus::kTimeout);
}

TEST(Channel, CloseDeliversQueuedThenClosed) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<RecvStatus> statuses;
  ch.send(1);
  ch.send(2);
  ch.close();
  EXPECT_FALSE(ch.send(3));  // dropped
  eng.spawn("reader", [&] {
    for (int i = 0; i < 3; ++i) statuses.push_back(ch.recv().status);
  });
  eng.run();
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_EQ(statuses[0], RecvStatus::kOk);
  EXPECT_EQ(statuses[1], RecvStatus::kOk);
  EXPECT_EQ(statuses[2], RecvStatus::kClosed);
}

TEST(Channel, CloseWakesBlockedReader) {
  Engine eng;
  Channel<int> ch(eng);
  RecvStatus status = RecvStatus::kOk;
  eng.spawn("reader", [&] { status = ch.recv().status; });
  eng.spawn("closer", [&] {
    eng.sleep(milliseconds(1));
    ch.close();
  });
  eng.run();
  EXPECT_EQ(status, RecvStatus::kClosed);
}

TEST(Channel, MultipleReadersEachGetOneItem) {
  Engine eng;
  Channel<int> ch(eng);
  int sum = 0, count = 0;
  for (int i = 0; i < 3; ++i) {
    eng.spawn("reader", [&] {
      auto r = ch.recv();
      if (r.ok()) {
        sum += *r.value;
        ++count;
      }
    });
  }
  eng.spawn("writer", [&] {
    eng.sleep(milliseconds(1));
    ch.send(10);
    ch.send(20);
    ch.send(30);
  });
  eng.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sum, 60);
}

TEST(Channel, KilledReaderDoesNotCorruptWaitList) {
  Engine eng;
  Channel<int> ch(eng);
  int got = -1;
  auto victim = eng.spawn("victim", [&] { (void)ch.recv(); });
  eng.spawn("survivor", [&] {
    auto r = ch.recv();
    got = r.value.value_or(-2);
  });
  eng.schedule(milliseconds(1), [&] { eng.kill(victim); });
  eng.schedule(milliseconds(2), [&] { ch.send(7); });
  eng.run();
  EXPECT_EQ(got, 7);
}

TEST(Channel, CloseWakesManyWaiters) {
  Engine eng;
  Channel<int> ch(eng);
  int closed_count = 0;
  for (int i = 0; i < 20; ++i) {
    eng.spawn("w", [&] {
      if (ch.recv().status == RecvStatus::kClosed) ++closed_count;
    });
  }
  eng.schedule(milliseconds(1), [&] { ch.close(); });
  eng.run();
  EXPECT_EQ(closed_count, 20);
}

TEST(Engine, KillStormLeavesEngineConsistent) {
  // Kill dozens of fibers blocked on assorted primitives at once; the
  // engine must drain cleanly and survivors must keep working.
  Engine eng;
  Channel<int> ch(eng);
  Mutex mu(eng);
  CondVar cv(eng);
  std::vector<FiberPtr> victims;
  for (int i = 0; i < 10; ++i) {
    victims.push_back(eng.spawn("v-recv", [&] { (void)ch.recv(); }));
    victims.push_back(eng.spawn("v-sleep", [&] { eng.sleep(seconds(100)); }));
    victims.push_back(eng.spawn("v-cv", [&] { cv.wait([] { return false; }); }));
  }
  int survivor_done = 0;
  eng.spawn("survivor", [&] {
    for (int i = 0; i < 10; ++i) {
      eng.sleep(milliseconds(2));
      LockGuard guard(mu);
      ++survivor_done;
    }
  });
  eng.schedule(milliseconds(5), [&] {
    for (auto& v : victims) eng.kill(v);
  });
  eng.run();
  EXPECT_EQ(survivor_done, 10);
  for (auto& v : victims) EXPECT_TRUE(v->finished());
  // The channel still works after the storm.
  int got = 0;
  eng.spawn("late", [&] { got = ch.recv().value.value_or(-1); });
  eng.schedule(0, [&] { ch.send(5); });
  eng.run();
  EXPECT_EQ(got, 5);
}

TEST(Engine, KillSelfFromInsideFiber) {
  Engine eng;
  bool after_kill = false;
  FiberPtr self_holder;
  self_holder = eng.spawn("suicidal", [&] {
    eng.kill(self_holder);   // marks; throw happens at the next block
    eng.sleep(milliseconds(1));
    after_kill = true;
  });
  eng.run();
  EXPECT_FALSE(after_kill);
  EXPECT_TRUE(self_holder->finished());
}

// ---------------------------------------------------------- Mutex / CV ----

TEST(Mutex, MutualExclusionAcrossBlockingPoints) {
  Engine eng;
  Mutex mu(eng);
  std::vector<int> trace;
  for (int i = 0; i < 3; ++i) {
    eng.spawn("worker", [&, i] {
      LockGuard guard(mu);
      trace.push_back(i * 10);      // enter
      eng.sleep(milliseconds(10));  // hold across a blocking point
      trace.push_back(i * 10 + 1);  // exit
    });
  }
  eng.run();
  ASSERT_EQ(trace.size(), 6u);
  // Sections never interleave: each enter is immediately followed by its exit.
  for (size_t i = 0; i < 6; i += 2) EXPECT_EQ(trace[i] + 1, trace[i + 1]);
}

TEST(Mutex, UnlockedOnKillUnwind) {
  Engine eng;
  Mutex mu(eng);
  auto holder = eng.spawn("holder", [&] {
    LockGuard guard(mu);
    eng.sleep(seconds(100));
  });
  bool acquired = false;
  eng.spawn("waiter", [&] {
    eng.sleep(milliseconds(1));
    LockGuard guard(mu);
    acquired = true;
  });
  eng.schedule(milliseconds(5), [&] { eng.kill(holder); });
  eng.run();
  EXPECT_TRUE(acquired);
  EXPECT_FALSE(mu.locked());
}

TEST(CondVar, WaitForPredicate) {
  Engine eng;
  CondVar cv(eng);
  int value = 0;
  bool observed = false;
  eng.spawn("waiter", [&] {
    cv.wait([&] { return value == 3; });
    observed = true;
  });
  eng.spawn("setter", [&] {
    for (int i = 1; i <= 3; ++i) {
      eng.sleep(milliseconds(1));
      value = i;
      cv.notify_all();
    }
  });
  eng.run();
  EXPECT_TRUE(observed);
}

TEST(CondVar, WaitUntilTimesOut) {
  Engine eng;
  CondVar cv(eng);
  bool ok = true;
  eng.spawn("waiter", [&] {
    ok = cv.wait_until(eng.now() + milliseconds(10), [] { return false; });
  });
  eng.run();
  EXPECT_FALSE(ok);
}

TEST(Barrier, AllArriveTogether) {
  Engine eng;
  Barrier bar(eng, 4);
  std::vector<Time> times;
  for (int i = 0; i < 4; ++i) {
    eng.spawn("p", [&, i] {
      eng.sleep(milliseconds(i * 10));
      bar.arrive_and_wait();
      times.push_back(eng.now());
    });
  }
  eng.run();
  ASSERT_EQ(times.size(), 4u);
  for (auto t : times) EXPECT_EQ(t, milliseconds(30));
}

TEST(Barrier, Reusable) {
  Engine eng;
  Barrier bar(eng, 2);
  int rounds_done = 0;
  for (int i = 0; i < 2; ++i) {
    eng.spawn("p", [&, i] {
      for (int round = 0; round < 5; ++round) {
        eng.sleep(milliseconds(i + 1));
        bar.arrive_and_wait();
      }
      ++rounds_done;
    });
  }
  eng.run();
  EXPECT_EQ(rounds_done, 2);
}

// ----------------------------------------------------------- Host/Disk ----

TEST(Disk, TransferTimeLinearInSize) {
  Engine eng;
  Disk disk(eng, DiskParams{milliseconds(2), 20.0});
  const Duration t1 = disk.transfer_time(20 * 1000 * 1000);
  EXPECT_EQ(t1, milliseconds(2) + seconds(1.0));
  // Doubling size roughly doubles the transfer term.
  const Duration t2 = disk.transfer_time(40 * 1000 * 1000);
  EXPECT_EQ(t2 - milliseconds(2), 2 * (t1 - milliseconds(2)));
}

TEST(Disk, ConcurrentWritesSerialize) {
  Engine eng;
  Disk disk(eng, DiskParams{0, 10.0});  // 10 MB/s, no setup
  Time done_a = 0, done_b = 0;
  eng.spawn("a", [&] {
    disk.write(10 * 1000 * 1000);
    done_a = eng.now();
  });
  eng.spawn("b", [&] {
    disk.write(10 * 1000 * 1000);
    done_b = eng.now();
  });
  eng.run();
  // Each write takes 1 s; serialized they finish at 1 s and 2 s.
  EXPECT_EQ(std::min(done_a, done_b), seconds(1.0));
  EXPECT_EQ(std::max(done_a, done_b), seconds(2.0));
}

TEST(Host, CrashKillsItsFibers) {
  Engine eng;
  Host host(eng, 0, "node0", default_machine());
  int survivor_progress = 0, victim_progress = 0;
  host.spawn("victim", [&] {
    for (;;) {
      eng.sleep(milliseconds(10));
      ++victim_progress;
    }
  });
  eng.spawn("survivor", [&] {
    for (int i = 0; i < 10; ++i) {
      eng.sleep(milliseconds(10));
      ++survivor_progress;
    }
  });
  eng.schedule(milliseconds(35), [&] { host.crash(); });
  eng.run();
  EXPECT_FALSE(host.alive());
  EXPECT_EQ(victim_progress, 3);
  EXPECT_EQ(survivor_progress, 10);
  EXPECT_EQ(host.incarnation(), 1u);
}

TEST(Host, RebootAllowsNewFibers) {
  Engine eng;
  Host host(eng, 0, "node0", default_machine());
  host.crash();
  host.reboot();
  EXPECT_TRUE(host.alive());
  bool ran = false;
  host.spawn("fresh", [&] { ran = true; });
  eng.run();
  EXPECT_TRUE(ran);
}

TEST(Machine, Table2HasSixEntriesMatchingPaper) {
  auto machines = table2_machines();
  ASSERT_EQ(machines.size(), 6u);
  // Spot-check endianness/word-length columns from Table 2.
  EXPECT_EQ(machines[0].endian, util::Endian::kLittle);  // i686 Linux
  EXPECT_EQ(machines[1].endian, util::Endian::kBig);     // Sun Ultra
  EXPECT_EQ(machines[2].endian, util::Endian::kBig);     // RS/6000
  EXPECT_EQ(machines[5].word_bytes, 8);                  // Alpha DS20 64-bit
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(machines[i].word_bytes, 4);
}

// ------------------------------------------------------------ StackPool ----

TEST(StackPool, ReusesSameSizeBucketAndCountsStats) {
  StackPool pool;
  const auto a = pool.acquire(64 * 1024);
  EXPECT_FALSE(a.reused);
  pool.release(a.base, a.total);
  const auto b = pool.acquire(64 * 1024);
  EXPECT_TRUE(b.reused);
  EXPECT_EQ(b.base, a.base);  // same mapping came back, guard page intact
  const auto c = pool.acquire(128 * 1024);
  EXPECT_FALSE(c.reused);  // different size, different bucket
  pool.release(b.base, b.total);
  pool.release(c.base, c.total);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 2u);
  EXPECT_EQ(pool.cached(), 2u);
  EXPECT_EQ(pool.retired(), 0u);
}

TEST(StackPool, RecyclesStacksAcrossTenThousandChurnedFibers) {
  // Spawn/kill churn: 200 waves of 50 fibers (10k total), mixing normal
  // exits with kills that unwind blocked fibers via FiberKilled. Wave size
  // stays under kMaxFreePerBucket, so after the first wave warms the pool
  // every stack is recycled — the steady state makes zero mmap syscalls.
  Engine eng;
  constexpr uint64_t kWaves = 200;
  constexpr uint64_t kPerWave = 50;
  eng.spawn("driver", [&] {
    for (uint64_t w = 0; w < kWaves; ++w) {
      std::vector<FiberPtr> wave;
      for (uint64_t i = 0; i < kPerWave; ++i) {
        if (i % 4 == 0) {
          wave.push_back(eng.spawn("victim", [&] { eng.sleep(seconds(10)); }));
        } else {
          wave.push_back(eng.spawn("worker", [&] { eng.sleep(microseconds(1)); }));
        }
      }
      eng.sleep(microseconds(2));  // workers finish; victims still blocked
      for (auto& f : wave) eng.kill(f);
      eng.sleep(microseconds(2));  // kill-wakes dispatch and unwind
    }
  });
  eng.run();

  const StackPool& pool = eng.stack_pool();
  EXPECT_EQ(pool.hits() + pool.misses(), kWaves * kPerWave + 1);  // +1 driver
  // Only the first wave (plus the driver) should miss.
  EXPECT_LE(pool.misses(), kPerWave + 1);
  EXPECT_GE(pool.hits(), (kWaves - 1) * kPerWave);
  // Retained memory stays bounded by the bucket cap.
  EXPECT_LE(pool.cached(), StackPool::kMaxFreePerBucket);
}

TEST(Machine, ReprCodeDistinguishesRepresentations) {
  auto machines = table2_machines();
  // i686 Linux and WinNT P-II share a representation; Sun differs.
  EXPECT_EQ(machines[0].repr_code(), machines[4].repr_code());
  EXPECT_NE(machines[0].repr_code(), machines[1].repr_code());
  EXPECT_NE(machines[0].repr_code(), machines[5].repr_code());
  EXPECT_TRUE(machines[0].same_representation(machines[3]));
}

}  // namespace
}  // namespace starfish::sim
