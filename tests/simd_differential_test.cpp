// Seeded differential suite for the runtime-dispatched SIMD kernels.
//
// The dispatch contract (util/simd/simd.hpp) is that every kernel is
// bit-identical across ISA levels, so checkpoint fingerprints, portable
// image payloads and packed MPI messages never depend on the host CPU.
// These tests pin that by running every kernel at every level the binary
// carries against the scalar reference, over randomized sizes, contents
// and (mis)alignments, and by re-encoding the same VM state and datatype
// layouts under each forced level.
//
// The whole binary is registered twice with ctest: once normally and once
// with STARFISH_SIMD=scalar (SimdDifferentialScalarForced), so the image
// and datatype goldens are also re-checked under a scalar-forced dispatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "ckpt/image.hpp"
#include "mpi/datatype.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"
#include "util/simd/simd.hpp"
#include "vm/value.hpp"

namespace starfish {
namespace {

namespace simd = util::simd;
using simd::Isa;
using vm::Value;

/// Levels beyond scalar that this binary + CPU can run.
std::vector<Isa> vector_levels() {
  std::vector<Isa> out;
  for (Isa isa : simd::available()) {
    if (isa != Isa::kScalar) out.push_back(isa);
  }
  return out;
}

/// Restores the dispatched table on scope exit (force() is process-global).
class ForceGuard {
 public:
  ForceGuard() : prev_(simd::level()) {}
  ~ForceGuard() { simd::force(prev_); }

 private:
  Isa prev_;
};

util::Bytes random_bytes(util::Rng& rng, size_t n) {
  util::Bytes b(n);
  for (auto& x : b) x = static_cast<std::byte>(rng.next() & 0xff);
  return b;
}

/// Sizes that straddle every tail-handling boundary of the kernels: the
/// 64-byte stripe, the vector register widths, and the 8/4/1-byte epilogue.
std::vector<size_t> boundary_sizes() {
  std::vector<size_t> sizes;
  for (size_t n = 0; n <= 130; ++n) sizes.push_back(n);
  for (size_t base : {256u, 512u, 4096u}) {
    sizes.push_back(base - 1);
    sizes.push_back(base);
    sizes.push_back(base + 1);
  }
  return sizes;
}

// ------------------------------------------------------------ kernels ----

TEST(SimdDifferential, FingerprintMatchesScalarOnBoundarySizes) {
  const simd::Ops* scalar = simd::table(Isa::kScalar);
  ASSERT_NE(scalar, nullptr);
  util::Rng rng(0x51f15a01);
  util::Bytes buf = random_bytes(rng, 4096 + 1 + 16);
  for (Isa isa : vector_levels()) {
    const simd::Ops* t = simd::table(isa);
    ASSERT_NE(t, nullptr);
    for (size_t n : boundary_sizes()) {
      for (size_t mis : {size_t{0}, size_t{1}, size_t{7}, size_t{13}}) {
        const std::byte* p = buf.data() + mis;
        EXPECT_EQ(t->fingerprint(p, n), scalar->fingerprint(p, n))
            << simd::isa_name(isa) << " n=" << n << " mis=" << mis;
      }
    }
  }
}

TEST(SimdDifferential, FingerprintMatchesScalarOnRandomSlices) {
  const simd::Ops* scalar = simd::table(Isa::kScalar);
  util::Rng rng(0x51f15a02);
  util::Bytes buf = random_bytes(rng, 1 << 16);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t n = rng.next() % (1 << 14);
    const size_t off = rng.next() % (buf.size() - n);
    const std::byte* p = buf.data() + off;
    const uint64_t want = scalar->fingerprint(p, n);
    for (Isa isa : vector_levels()) {
      EXPECT_EQ(simd::table(isa)->fingerprint(p, n), want)
          << simd::isa_name(isa) << " iter=" << iter << " n=" << n;
    }
  }
}

TEST(SimdDifferential, FingerprintDistinguishesContent) {
  // Sanity on the hash itself (any level; they are identical per the tests
  // above): distinct content and distinct lengths produce distinct values.
  util::Bytes a(4096, std::byte{0});
  util::Bytes b = a;
  b[1234] = std::byte{1};
  EXPECT_NE(simd::fingerprint(a.data(), a.size()), simd::fingerprint(b.data(), b.size()));
  EXPECT_NE(simd::fingerprint(a.data(), 4095), simd::fingerprint(a.data(), 4096));
  EXPECT_NE(simd::fingerprint(a.data(), 0), simd::fingerprint(a.data(), 1));
}

template <size_t kElem>
void check_bswap(void (*vec_fn)(std::byte*, const std::byte*, size_t),
                 void (*ref_fn)(std::byte*, const std::byte*, size_t), const char* name,
                 util::Rng& rng) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{15}, size_t{16}, size_t{17},
                   size_t{63}, size_t{64}, size_t{65}, size_t{500}, size_t{2000}}) {
    const size_t mis = rng.next() % 8;
    util::Bytes src = random_bytes(rng, n * kElem + mis);
    util::Bytes want(n * kElem + mis), got(n * kElem + mis);
    ref_fn(want.data() + mis, src.data() + mis, n);
    vec_fn(got.data() + mis, src.data() + mis, n);
    EXPECT_EQ(want, got) << name << " out-of-place n=" << n << " mis=" << mis;
    // In-place form (the Reader converts wire slices in place).
    util::Bytes inplace = src;
    vec_fn(inplace.data() + mis, inplace.data() + mis, n);
    EXPECT_TRUE(std::equal(want.begin() + mis, want.end(), inplace.begin() + mis))
        << name << " in-place n=" << n << " mis=" << mis;
  }
}

TEST(SimdDifferential, ByteswapMatchesScalar) {
  const simd::Ops* scalar = simd::table(Isa::kScalar);
  util::Rng rng(0x51f15a03);
  for (Isa isa : vector_levels()) {
    const simd::Ops* t = simd::table(isa);
    check_bswap<2>(t->bswap16, scalar->bswap16, simd::isa_name(isa), rng);
    check_bswap<4>(t->bswap32, scalar->bswap32, simd::isa_name(isa), rng);
    check_bswap<8>(t->bswap64, scalar->bswap64, simd::isa_name(isa), rng);
  }
}

TEST(SimdDifferential, ByteswapIsAnInvolutionAndReversesBytes) {
  util::Rng rng(0x51f15a04);
  util::Bytes src = random_bytes(rng, 64 * 8);
  util::Bytes once(src.size()), twice(src.size());
  simd::bswap64(once.data(), src.data(), 64);
  simd::bswap64(twice.data(), once.data(), 64);
  EXPECT_EQ(twice, src);
  for (size_t e = 0; e < 64; ++e) {
    for (size_t b = 0; b < 8; ++b) {
      EXPECT_EQ(once[e * 8 + b], src[e * 8 + 7 - b]) << "elem " << e << " byte " << b;
    }
  }
}

TEST(SimdDifferential, WidenNarrowMatchScalar) {
  const simd::Ops* scalar = simd::table(Isa::kScalar);
  util::Rng rng(0x51f15a05);
  for (Isa isa : vector_levels()) {
    const simd::Ops* t = simd::table(isa);
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9}, size_t{100},
                     size_t{1000}}) {
      const size_t mis = rng.next() % 8;
      util::Bytes narrow = random_bytes(rng, n * 4 + mis);
      util::Bytes wide_want(n * 8), wide_got(n * 8);
      scalar->widen_i32_i64(wide_want.data(), narrow.data() + mis, n);
      t->widen_i32_i64(wide_got.data(), narrow.data() + mis, n);
      EXPECT_EQ(wide_want, wide_got) << simd::isa_name(isa) << " widen n=" << n;

      util::Bytes wide = random_bytes(rng, n * 8 + mis);
      util::Bytes narrow_want(n * 4), narrow_got(n * 4);
      scalar->narrow_i64_i32(narrow_want.data(), wide.data() + mis, n);
      t->narrow_i64_i32(narrow_got.data(), wide.data() + mis, n);
      EXPECT_EQ(narrow_want, narrow_got) << simd::isa_name(isa) << " narrow n=" << n;
    }
  }
}

TEST(SimdDifferential, WidenSignExtendsAndNarrowTruncates) {
  const int32_t in[] = {0, 1, -1, INT32_MIN, INT32_MAX, -123456};
  int64_t wide[6];
  simd::widen_i32_i64(reinterpret_cast<std::byte*>(wide),
                      reinterpret_cast<const std::byte*>(in), 6);
  for (size_t i = 0; i < 6; ++i) EXPECT_EQ(wide[i], static_cast<int64_t>(in[i])) << i;
  int32_t back[6];
  simd::narrow_i64_i32(reinterpret_cast<std::byte*>(back),
                       reinterpret_cast<const std::byte*>(wide), 6);
  for (size_t i = 0; i < 6; ++i) EXPECT_EQ(back[i], in[i]) << i;
}

TEST(SimdDifferential, CopyMatchesSourceAtEveryLevel) {
  util::Rng rng(0x51f15a06);
  for (Isa isa : simd::available()) {
    const simd::Ops* t = simd::table(isa);
    for (int iter = 0; iter < 200; ++iter) {
      const size_t n = rng.next() % 3000;
      const size_t mis_s = rng.next() % 16, mis_d = rng.next() % 16;
      util::Bytes src = random_bytes(rng, n + mis_s);
      util::Bytes dst(n + mis_d, std::byte{0xcd});
      t->copy(dst.data() + mis_d, src.data() + mis_s, n);
      EXPECT_EQ(std::memcmp(dst.data() + mis_d, src.data() + mis_s, n), 0)
          << simd::isa_name(isa) << " n=" << n;
    }
  }
}

TEST(SimdDifferential, MismatchMatchesScalarAtPlantedPositions) {
  const simd::Ops* scalar = simd::table(Isa::kScalar);
  util::Rng rng(0x51f15a07);
  for (size_t n : boundary_sizes()) {
    util::Bytes a = random_bytes(rng, n + 16);
    util::Bytes b = a;
    // Equal ranges first, then a planted difference at every boundary-ish
    // position (start, end, register edges, random interior).
    std::vector<size_t> positions = {0, n / 2, n > 0 ? n - 1 : 0, rng.next() % (n + 1)};
    for (size_t limit : {n, n / 3}) {
      EXPECT_EQ(scalar->mismatch(a.data(), b.data(), limit), limit);
      for (Isa isa : vector_levels()) {
        EXPECT_EQ(simd::table(isa)->mismatch(a.data(), b.data(), limit), limit)
            << simd::isa_name(isa) << " equal n=" << limit;
      }
    }
    for (size_t pos : positions) {
      if (pos >= n) continue;
      util::Bytes c = a;
      c[pos] = static_cast<std::byte>(static_cast<uint8_t>(c[pos]) ^ 0x80);
      const size_t want = scalar->mismatch(a.data(), c.data(), n);
      ASSERT_EQ(want, pos);
      for (Isa isa : vector_levels()) {
        EXPECT_EQ(simd::table(isa)->mismatch(a.data(), c.data(), n), want)
            << simd::isa_name(isa) << " n=" << n << " pos=" << pos;
      }
      // Misaligned views of the same planted difference.
      for (size_t mis : {size_t{1}, size_t{7}, size_t{13}}) {
        const size_t m = n;  // buffers carry 16 spare bytes
        const size_t w = scalar->mismatch(a.data() + mis, c.data() + mis, m);
        for (Isa isa : vector_levels()) {
          EXPECT_EQ(simd::table(isa)->mismatch(a.data() + mis, c.data() + mis, m), w)
              << simd::isa_name(isa) << " mis=" << mis;
        }
      }
    }
  }
}

TEST(SimdDifferential, Gather64MatchesScalarAtRandomStrides) {
  const simd::Ops* scalar = simd::table(Isa::kScalar);
  util::Rng rng(0x51f15a08);
  for (int iter = 0; iter < 200; ++iter) {
    const size_t n = rng.next() % 600;
    const size_t stride = 8 + rng.next() % 56;  // includes the Value stride 32
    const size_t mis = rng.next() % 8;          // unaligned source base
    util::Bytes src = random_bytes(rng, mis + (n == 0 ? 0 : (n - 1) * stride + 8));
    util::Bytes want(n * 8, std::byte{0xcd});
    scalar->gather64(want.data(), src.data() + mis, stride, n);
    // Reference semantics: element i is the 8 bytes at src + i*stride.
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(std::memcmp(want.data() + 8 * i, src.data() + mis + i * stride, 8), 0);
    }
    for (Isa isa : vector_levels()) {
      util::Bytes got(n * 8, std::byte{0x3e});
      simd::table(isa)->gather64(got.data(), src.data() + mis, stride, n);
      EXPECT_EQ(got, want) << simd::isa_name(isa) << " n=" << n << " stride=" << stride;
    }
  }
}

// ----------------------------------------------------------- dispatch ----

TEST(SimdDifferential, DispatchInvariants) {
  auto avail = simd::available();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), Isa::kScalar);  // scalar is always present
  EXPECT_NE(simd::table(Isa::kScalar), nullptr);
  // The dispatched level is one of the available ones and self-consistent.
  EXPECT_EQ(simd::ops().isa, simd::level());
  EXPECT_NE(std::find(avail.begin(), avail.end(), simd::level()), avail.end());
  // The probe is coherent with table availability on this host.
  if (simd::cpu_features().avx2 && simd::table(Isa::kAvx2) != nullptr) {
    EXPECT_EQ(simd::table(Isa::kAvx2)->isa, Isa::kAvx2);
  }
}

TEST(SimdDifferential, ForceOverridesAndRestores) {
  const Isa before = simd::level();
  {
    ForceGuard guard;
    simd::force(Isa::kScalar);
    EXPECT_EQ(simd::level(), Isa::kScalar);
    EXPECT_EQ(simd::ops().isa, Isa::kScalar);
  }
  EXPECT_EQ(simd::level(), before);
}

// ------------------------------------------------- portable image ----

/// A state big and varied enough that every column kernel sees real work.
vm::VmState fuzz_state(uint64_t seed) {
  util::Rng rng(seed);
  vm::VmState s;
  auto rand_value = [&rng]() {
    switch (rng.next() % 5) {
      case 0: return Value::unit();
      case 1: return Value::integer(static_cast<int32_t>(rng.next()));
      case 2: return Value::real(static_cast<double>(rng.next()) * 0x1.0p-32);
      case 3: return Value::boolean(rng.chance(0.5));
      default: return Value::reference(static_cast<uint32_t>(rng.next() % 7));
    }
  };
  for (int i = 0; i < 600; ++i) s.globals.push_back(rand_value());
  for (int i = 0; i < 200; ++i) s.stack.push_back(rand_value());
  for (int fi = 0; fi < 5; ++fi) {
    vm::Frame f;
    f.function = static_cast<uint32_t>(rng.next() % 100);
    f.pc = static_cast<uint32_t>(rng.next() % 1000);
    for (int i = 0; i < 50; ++i) f.locals.push_back(rand_value());
    s.frames.push_back(std::move(f));
  }
  for (int hi = 0; hi < 7; ++hi) {
    vm::HeapObject obj;
    if (hi % 2 == 0) {
      obj.kind = vm::HeapObject::Kind::kArray;
      for (int i = 0; i < 80; ++i) obj.fields.push_back(rand_value());
    } else {
      obj.kind = vm::HeapObject::Kind::kBytes;
      obj.bytes = util::Bytes(333, std::byte{static_cast<uint8_t>(hi)});
    }
    s.heap.push_back(std::move(obj));
  }
  s.steps_executed = rng.next();
  return s;
}

TEST(SimdDifferential, ImagePayloadBytesInvariantAcrossLevels) {
  const vm::VmState state = fuzz_state(0x1111a6e5);
  ForceGuard guard;
  for (const sim::Machine& saver : sim::table2_machines()) {
    simd::force(Isa::kScalar);
    const ckpt::Image want = ckpt::portable_encode(saver, state);
    for (Isa isa : vector_levels()) {
      simd::force(isa);
      const ckpt::Image got = ckpt::portable_encode(saver, state);
      EXPECT_EQ(got.payload, want.payload)
          << saver.label() << " encoded differently under " << simd::isa_name(isa);
      // Decode back on a 64-bit little-endian target at this level too.
      auto back = ckpt::portable_decode(want, sim::default_machine());
      ASSERT_TRUE(back.ok()) << back.error().to_string();
      EXPECT_EQ(back.value(), state) << saver.label() << " via " << simd::isa_name(isa);
    }
  }
}

TEST(SimdDifferential, MixedEndianRoundTripGolden) {
  // Encode on a big-endian 32-bit machine, decode on a little-endian 64-bit
  // one — the full byteswap + widen path. Registered a second time with
  // STARFISH_SIMD=scalar so the golden also runs under forced-scalar dispatch.
  sim::Machine big32{"sparc", "sunos", util::Endian::kBig, 4};
  sim::Machine little64{"alpha", "osf1", util::Endian::kLittle, 8};

  vm::VmState s;
  s.globals = {Value::integer(0x01020304), Value::integer(-2), Value::real(6.5),
               Value::boolean(true), Value::reference(3), Value::unit()};
  s.steps_executed = 0x1122334455667788ull;

  const ckpt::Image img = ckpt::portable_encode(big32, s);
  EXPECT_EQ(img.repr_code, big32.repr_code());
  auto back = ckpt::portable_decode(img, little64);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back.value().globals[0], Value::integer(0x01020304));
  EXPECT_EQ(back.value().globals[1], Value::integer(-2));
  EXPECT_EQ(back.value().globals[2], Value::real(6.5));
  EXPECT_EQ(back.value().globals[3], Value::boolean(true));
  EXPECT_EQ(back.value().globals[4], Value::reference(3));
  EXPECT_EQ(back.value().globals[5], Value::unit());
  EXPECT_EQ(back.value().steps_executed, 0x1122334455667788ull);

  // And the reverse direction narrows: 64-bit saver, 32-bit target.
  const ckpt::Image img64 = ckpt::portable_encode(little64, back.value());
  auto back32 = ckpt::portable_decode(img64, big32);
  ASSERT_TRUE(back32.ok()) << back32.error().to_string();
  EXPECT_EQ(back32.value(), back.value());
}

// ------------------------------------------------------- datatype ----

TEST(SimdDifferential, DatatypePackBytesInvariantAcrossLevels) {
  util::Rng rng(0x9ac4);
  ForceGuard guard;
  for (int iter = 0; iter < 30; ++iter) {
    // Random indexed layout, zero-length blocks included.
    std::vector<std::pair<size_t, size_t>> blocks;
    size_t off = rng.next() % 32;
    const size_t n_blocks = 1 + rng.next() % 12;
    for (size_t b = 0; b < n_blocks; ++b) {
      const size_t len = rng.next() % 200;  // 0 allowed
      blocks.emplace_back(off, len);
      off += len + rng.next() % 64;
    }
    const mpi::Datatype dt = mpi::Datatype::indexed(blocks);
    util::Bytes buffer = random_bytes(rng, dt.extent() + 8);

    simd::force(Isa::kScalar);
    auto want = dt.pack(buffer);
    ASSERT_TRUE(want.ok());
    for (Isa isa : vector_levels()) {
      simd::force(isa);
      auto got = dt.pack(buffer);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), want.value()) << simd::isa_name(isa) << " iter=" << iter;

      util::Bytes scattered(dt.extent() + 8, std::byte{0});
      ASSERT_TRUE(dt.unpack(got.value(), scattered).ok());
      auto repacked = dt.pack(scattered);
      ASSERT_TRUE(repacked.ok());
      EXPECT_EQ(repacked.value(), want.value()) << "unpack/pack round trip, iter=" << iter;
    }
  }
}

}  // namespace
}  // namespace starfish
