#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "util/buffer.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace starfish::util {
namespace {

// ------------------------------------------------------------- Buffer ----

TEST(Buffer, WriteReadRoundtripLittleEndian) {
  Bytes b;
  Writer w(b, Endian::kLittle);
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f64(3.14159265358979);
  w.boolean(true);
  w.str("starfish");

  Reader r(as_bytes_view(b), Endian::kLittle);
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32().value(), -42);
  EXPECT_EQ(r.i64().value(), -1234567890123ll);
  EXPECT_DOUBLE_EQ(r.f64().value(), 3.14159265358979);
  EXPECT_TRUE(r.boolean().value());
  EXPECT_EQ(r.str().value(), "starfish");
  EXPECT_TRUE(r.exhausted());
}

TEST(Buffer, BigEndianByteOrder) {
  Bytes b;
  Writer w(b, Endian::kBig);
  w.u32(0x01020304);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(std::to_integer<int>(b[0]), 1);
  EXPECT_EQ(std::to_integer<int>(b[3]), 4);

  Bytes little;
  Writer wl(little, Endian::kLittle);
  wl.u32(0x01020304);
  EXPECT_EQ(std::to_integer<int>(little[0]), 4);
  EXPECT_EQ(std::to_integer<int>(little[3]), 1);
}

TEST(Buffer, CrossEndianReadback) {
  Bytes b;
  Writer w(b, Endian::kBig);
  w.u64(0x1122334455667788ull);
  Reader r(as_bytes_view(b), Endian::kBig);
  EXPECT_EQ(r.u64().value(), 0x1122334455667788ull);
}

TEST(Buffer, ShortReadFailsGracefully) {
  Bytes b;
  Writer w(b);
  w.u16(7);
  Reader r(as_bytes_view(b));
  EXPECT_TRUE(r.u16().ok());
  auto fail = r.u32();
  ASSERT_FALSE(fail.ok());
  EXPECT_EQ(fail.error().code, "decode");
}

TEST(Buffer, BytesLengthPrefixBoundsChecked) {
  // A length prefix claiming more bytes than remain must error, not crash.
  Bytes b;
  Writer w(b);
  w.u32(1000);  // claims 1000 bytes follow
  w.u8(1);
  Reader r(as_bytes_view(b));
  EXPECT_FALSE(r.bytes().ok());
}

TEST(Buffer, RawReadExact) {
  Bytes b;
  Writer w(b);
  w.raw(std::as_bytes(std::span<const char>("abcd", 4)));
  Reader r(as_bytes_view(b));
  auto chunk = r.raw(4);
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk.value().size(), 4u);
  EXPECT_FALSE(r.raw(1).ok());
}

// Property sweep: every u64 value survives both endiannesses.
class BufferEndianProperty : public ::testing::TestWithParam<Endian> {};

TEST_P(BufferEndianProperty, U64RoundtripRandomValues) {
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const uint64_t v = rng.next();
    Bytes b;
    Writer w(b, GetParam());
    w.u64(v);
    Reader r(as_bytes_view(b), GetParam());
    EXPECT_EQ(r.u64().value(), v);
  }
}

TEST_P(BufferEndianProperty, F64RoundtripRandomValues) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double v = (rng.uniform() - 0.5) * 1e18;
    Bytes b;
    Writer w(b, GetParam());
    w.f64(v);
    Reader r(as_bytes_view(b), GetParam());
    EXPECT_DOUBLE_EQ(r.f64().value(), v);
  }
}

INSTANTIATE_TEST_SUITE_P(BothEndians, BufferEndianProperty,
                         ::testing::Values(Endian::kLittle, Endian::kBig));

// ------------------------------------------------------------- Result ----

TEST(Result, ValueAndError) {
  Result<int> ok = 5;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);

  Result<int> err = Error::make("nope", "broken");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, "nope");
  EXPECT_EQ(err.value_or(9), 9);
}

TEST(Result, StatusOkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status bad = Error::make("x", "y");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().to_string(), "x: y");
}

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, RangeInclusive) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

// ------------------------------------------------------------ Strings ----

TEST(Strings, SplitAndJoin) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, "|"), "a|b||c");
}

TEST(Strings, SplitWhitespace) {
  auto parts = split_ws("  SUBMIT  app  4 \t restart ");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "SUBMIT");
  EXPECT_EQ(parts[3], "restart");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(to_upper("Login"), "LOGIN");
  EXPECT_EQ(to_lower("LoGiN"), "login");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42").value_or(0), 42);
  EXPECT_EQ(parse_int(" -7 ").value_or(0), -7);
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(632 * 1024), "632.0 KB");
  EXPECT_EQ(format_bytes(135ull * 1024 * 1024), "135.00 MB");
}

}  // namespace
}  // namespace starfish::util
