// Differential tests for the VM execution engine: the fast dispatcher
// (computed goto / switch, verifier-elided checks, fused superinstructions)
// must be observably BIT-IDENTICAL to the original fully-checked loop —
// same end state, same trap messages, same step counts, same syscall
// boundaries, and byte-identical portable checkpoint images at every pause.
//
// Random programs are generated from seeded fragments (verifier-friendly
// loops, arithmetic, calls) mixed with raw random instructions (programs
// that trap or defeat analysis), then driven through all three dispatch
// configurations in lockstep under an identical slice schedule, with the
// host servicing syscalls identically.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "ckpt/image.hpp"
#include "vm/bytecode.hpp"
#include "vm/interp.hpp"

namespace starfish::vm {
namespace {

const sim::Machine kM32 = {"i686", "Linux", util::Endian::kLittle, 4};
const sim::Machine kM64 = {"Alpha", "Linux", util::Endian::kLittle, 8};

using Rng = std::mt19937;

int64_t rnd_int(Rng& rng, int64_t lo, int64_t hi) {
  return std::uniform_int_distribution<int64_t>(lo, hi)(rng);
}

// ------------------------------------------------------------ generator ----

void emit(std::vector<Instr>& code, Op op, int64_t imm_i = 0, double imm_f = 0.0) {
  Instr in;
  in.op = op;
  in.imm_i = imm_i;
  in.imm_f = imm_f;
  code.push_back(in);
}

/// Appends one well-formed fragment (keeps the abstract stack balanced and
/// local/jump operands valid) so generated programs execute long enough to
/// exercise the fast loop and its fusion patterns.
void emit_fragment(Rng& rng, std::vector<Instr>& code, uint32_t n_locals,
                   size_t n_functions) {
  const int64_t kind = rnd_int(rng, 0, 7);
  const int64_t l0 = rnd_int(rng, 0, n_locals - 1);
  const int64_t l1 = rnd_int(rng, 0, n_locals - 1);
  switch (kind) {
    case 0:  // int expression
      emit(code, Op::kPushInt, rnd_int(rng, -1000, 1000));
      emit(code, Op::kPushInt, rnd_int(rng, -1000, 1000));
      emit(code, static_cast<Op>(rnd_int(rng, static_cast<int64_t>(Op::kAdd),
                                         static_cast<int64_t>(Op::kMul))));
      emit(code, Op::kStoreLocal, l0);
      break;
    case 1:  // increment idiom (fuses to kFusedIncLocal)
      emit(code, Op::kLoadLocal, l0);
      emit(code, Op::kPushInt, rnd_int(rng, 1, 5));
      emit(code, rnd_int(rng, 0, 1) ? Op::kAdd : Op::kSub);
      emit(code, Op::kStoreLocal, l0);
      break;
    case 2:  // local-local arithmetic (fuses to kFusedLoadLoadArith[St])
      emit(code, Op::kLoadLocal, l0);
      emit(code, Op::kLoadLocal, l1);
      emit(code, Op::kAdd);
      if (rnd_int(rng, 0, 1) != 0) {
        emit(code, Op::kStoreLocal, l1);
      } else {
        emit(code, Op::kPop);
      }
      break;
    case 3: {  // bounded countdown loop with compare+branch (fuses)
      emit(code, Op::kPushInt, rnd_int(rng, 2, 12));
      emit(code, Op::kStoreLocal, l0);
      const size_t loop_top = code.size();
      emit(code, Op::kLoadLocal, l0);
      emit(code, Op::kPushInt, 1);
      emit(code, Op::kSub);
      emit(code, Op::kStoreLocal, l0);
      emit(code, Op::kLoadLocal, l0);
      emit(code, Op::kPushInt, 0);
      emit(code, Op::kGt);
      emit(code, Op::kJmpIfFalse, static_cast<int64_t>(code.size() + 2));
      emit(code, Op::kJmp, static_cast<int64_t>(loop_top));
      break;
    }
    case 4:  // float expression
      emit(code, Op::kPushFloat, 0, 0.5 * static_cast<double>(rnd_int(rng, 1, 9)));
      emit(code, Op::kPushFloat, 0, 0.25 * static_cast<double>(rnd_int(rng, 1, 9)));
      emit(code, static_cast<Op>(rnd_int(rng, static_cast<int64_t>(Op::kFAdd),
                                         static_cast<int64_t>(Op::kFDiv))));
      emit(code, Op::kPop);
      break;
    case 5:  // heap traffic (always takes the checked escape)
      emit(code, Op::kPushInt, rnd_int(rng, 1, 4));
      emit(code, Op::kNewArray);
      emit(code, Op::kDup);
      emit(code, Op::kPushInt, 0);
      emit(code, Op::kLoadLocal, l0);
      emit(code, Op::kAStore);
      emit(code, Op::kALen);
      emit(code, Op::kPop);
      break;
    case 6:  // syscall round-trip
      switch (rnd_int(rng, 0, 3)) {
        case 0:
          emit(code, Op::kSyscall, static_cast<int64_t>(Syscall::kRank));
          emit(code, Op::kStoreLocal, l0);
          break;
        case 1:
          emit(code, Op::kPushInt, rnd_int(rng, 0, 50));
          emit(code, Op::kSyscall, static_cast<int64_t>(Syscall::kPrint));
          break;
        case 2:
          emit(code, Op::kPushInt, rnd_int(rng, 0, 3));
          emit(code, Op::kSyscall, static_cast<int64_t>(Syscall::kAllreduceSum));
          emit(code, Op::kPop);
          break;
        default:
          emit(code, Op::kSyscall, static_cast<int64_t>(Syscall::kWorldSize));
          emit(code, Op::kPop);
          break;
      }
      break;
    default:  // call a random function (recursion is budget-bounded)
      if (n_functions > 1) {
        emit(code, Op::kPushInt, rnd_int(rng, -5, 5));
        emit(code, Op::kCall, rnd_int(rng, 0, static_cast<int64_t>(n_functions) - 1));
        emit(code, Op::kPop);
      } else {
        emit(code, Op::kNop);
      }
      break;
  }
}

/// Raw random instruction: operands are often-but-not-always valid, so some
/// programs trap and some defeat the verifier — both dispatchers must agree
/// on those too. Two exclusions keep generated programs from crashing the
/// harness itself (identically under every dispatcher, so no divergence is
/// lost): heap allocation ops never run with an arbitrary stack top (wrapped
/// arithmetic reaches 2^63, and new_array of that throws std::length_error),
/// and random jumps land only on fragment boundaries or out of range — never
/// inside a fragment, where they could skip an allocation's length push.
void emit_chaos(Rng& rng, std::vector<Instr>& code, uint32_t n_locals,
                const std::vector<size_t>& boundaries) {
  const auto op = static_cast<Op>(rnd_int(rng, 0, static_cast<int64_t>(Op::kHalt)));
  int64_t imm = rnd_int(rng, -2, static_cast<int64_t>(n_locals) + 2);
  if (op == Op::kJmp || op == Op::kJmpIfFalse) {
    if (rnd_int(rng, 0, 3) == 0) {
      imm = rnd_int(rng, static_cast<int64_t>(code.size()) + 1,
                    static_cast<int64_t>(code.size()) + 6);  // pc-out-of-range trap
    } else {
      imm = static_cast<int64_t>(
          boundaries[static_cast<size_t>(rnd_int(rng, 0, static_cast<int64_t>(boundaries.size()) - 1))]);
    }
  }
  if (op == Op::kCall) imm = rnd_int(rng, 0, 2);
  emit(code, op, imm, 1.5);
}

Program random_program(uint32_t seed) {
  Rng rng(seed);
  Program prog;
  const size_t n_functions = static_cast<size_t>(rnd_int(rng, 1, 3));
  for (size_t f = 0; f < n_functions; ++f) {
    Function fn;
    fn.name = f == 0 ? "main" : "fn" + std::to_string(f);
    fn.n_args = f == 0 ? 0 : 1;
    fn.n_locals = static_cast<uint32_t>(rnd_int(rng, 2, 4));
    const int64_t fragments = rnd_int(rng, 2, 6);
    std::vector<size_t> boundaries;
    for (int64_t i = 0; i < fragments; ++i) {
      boundaries.push_back(fn.code.size());
      if (rnd_int(rng, 0, 9) < 7) {
        emit_fragment(rng, fn.code, fn.n_locals, n_functions);
      } else {
        emit_chaos(rng, fn.code, fn.n_locals, boundaries);
      }
    }
    if (f == 0) {
      emit(fn.code, Op::kHalt);
    } else {
      emit(fn.code, Op::kPushInt, 7);
      emit(fn.code, Op::kRet);
    }
    prog.functions.push_back(std::move(fn));
  }
  return prog;
}

// ------------------------------------------------------------- harness ----

/// Services a pending syscall with fixed, deterministic host behavior —
/// applied identically to every interpreter under comparison.
void service_syscall(Interpreter& interp, Syscall syscall) {
  switch (syscall) {
    case Syscall::kPrint:
    case Syscall::kSleepMs:
    case Syscall::kSpin:
      (void)interp.pop_value();
      break;
    case Syscall::kRank:
      interp.push_value(Value::integer(3));
      break;
    case Syscall::kWorldSize:
      interp.push_value(Value::integer(8));
      break;
    case Syscall::kSendTo:
      (void)interp.pop_value();
      (void)interp.pop_value();
      break;
    case Syscall::kRecvFrom:
      (void)interp.pop_value();
      interp.push_value(Value::integer(1234));
      break;
    case Syscall::kCheckpoint:
      interp.push_value(Value::unit());
      break;
    case Syscall::kBarrier:
      break;
    case Syscall::kAllreduceSum: {
      Value v = interp.pop_value();
      interp.push_value(Value::integer(v.i * 8));
      break;
    }
  }
  interp.complete_syscall();
}

util::Bytes image_of(const Interpreter& interp, const sim::Machine& machine) {
  return ckpt::portable_encode(machine, interp.state()).payload;
}

/// Drives `a` (reference: checked) and `b` (candidate) through an identical
/// slice schedule, comparing status/trap/steps and the portable checkpoint
/// image at every pause. Returns after halt/trap or `max_rounds` slices.
void run_lockstep(const Program& prog, const sim::Machine& machine,
                  Interpreter::Dispatch mode_b, uint32_t seed) {
  Interpreter a(prog, machine, Interpreter::Dispatch::kChecked);
  Interpreter b(prog, machine, mode_b);
  a.start();
  b.start();
  Rng slices(seed ^ 0x9e3779b9u);
  const int max_rounds = 300;
  for (int round = 0; round < max_rounds; ++round) {
    const auto slice = static_cast<uint64_t>(rnd_int(slices, 1, 37));
    RunResult ra = a.run(slice);
    RunResult rb = b.run(slice);
    ASSERT_EQ(static_cast<int>(ra.status), static_cast<int>(rb.status))
        << "seed " << seed << " round " << round << " trap_a='" << ra.trap
        << "' trap_b='" << rb.trap << "'";
    ASSERT_EQ(ra.trap, rb.trap) << "seed " << seed;
    ASSERT_EQ(a.state().steps_executed, b.state().steps_executed)
        << "seed " << seed << " round " << round;
    ASSERT_EQ(image_of(a, machine), image_of(b, machine))
        << "portable image diverged: seed " << seed << " round " << round;
    if (ra.status == RunStatus::kHalted || ra.status == RunStatus::kTrap) return;
    if (ra.status == RunStatus::kSyscall) {
      ASSERT_EQ(static_cast<int>(ra.syscall), static_cast<int>(rb.syscall));
      service_syscall(a, ra.syscall);
      service_syscall(b, rb.syscall);
    }
  }
}

// --------------------------------------------------------------- tests ----

TEST(VmDifferential, FastMatchesCheckedOnRandomPrograms) {
  for (uint32_t seed = 1; seed <= 120; ++seed) {
    Program prog = random_program(seed);
    try {
      run_lockstep(prog, kM64, Interpreter::Dispatch::kFast, seed);
    } catch (const std::exception& e) {
      FAIL() << "exception at seed " << seed << ": " << e.what() << "\n"
             << disassemble(prog);
    }
    if (HasFatalFailure()) return;
  }
}

TEST(VmDifferential, FastMatchesCheckedOn32BitMachine) {
  // Word wrapping is live on every int push/arith here.
  for (uint32_t seed = 200; seed <= 280; ++seed) {
    Program prog = random_program(seed);
    run_lockstep(prog, kM32, Interpreter::Dispatch::kFast, seed);
    if (HasFatalFailure()) return;
  }
}

TEST(VmDifferential, UnfusedMatchesCheckedOnRandomPrograms) {
  for (uint32_t seed = 300; seed <= 360; ++seed) {
    Program prog = random_program(seed);
    run_lockstep(prog, kM64, Interpreter::Dispatch::kFastNoFuse, seed);
    if (HasFatalFailure()) return;
  }
}

TEST(VmDifferential, MidLoopCheckpointImagesAreByteIdentical) {
  // The acceptance pin: cut portable images inside a hot (fused) loop at
  // awkward slice boundaries — including budgets that expire in the middle
  // of a superinstruction — across all three dispatch configurations.
  const char* src = R"(
func main 0 2
  push_int 0
  store_local 0
  push_int 1
  store_local 1
loop:
  load_local 1
  push_int 200
  le
  jmp_if_false done
  load_local 0
  load_local 1
  add
  store_local 0
  load_local 1
  push_int 1
  add
  store_local 1
  jmp loop
done:
  load_local 0
  halt
)";
  auto assembled = assemble(src);
  ASSERT_TRUE(assembled.ok());
  const Program prog = assembled.value();
  for (uint64_t slice = 1; slice <= 11; ++slice) {
    Interpreter checked(prog, kM32, Interpreter::Dispatch::kChecked);
    Interpreter fast(prog, kM32, Interpreter::Dispatch::kFast);
    Interpreter nofuse(prog, kM32, Interpreter::Dispatch::kFastNoFuse);
    checked.start();
    fast.start();
    nofuse.start();
    for (;;) {
      RunResult rc = checked.run(slice);
      RunResult rf = fast.run(slice);
      RunResult rn = nofuse.run(slice);
      ASSERT_EQ(static_cast<int>(rc.status), static_cast<int>(rf.status));
      ASSERT_EQ(static_cast<int>(rc.status), static_cast<int>(rn.status));
      const util::Bytes img = image_of(checked, kM32);
      ASSERT_EQ(img, image_of(fast, kM32)) << "slice " << slice;
      ASSERT_EQ(img, image_of(nofuse, kM32)) << "slice " << slice;
      if (rc.status == RunStatus::kHalted) break;
      ASSERT_EQ(rc.status, RunStatus::kRunning);
    }
    EXPECT_EQ(checked.state().stack.back(), Value::integer(20100));  // sum 1..200
  }
}

TEST(VmDifferential, RestoredImageResumesIdenticallyOnBothDispatchers) {
  // Checkpoint mid-run on the checked loop, restore into a fast
  // interpreter (and vice versa), and finish: end states must agree.
  Program prog = random_program(42);
  Interpreter a(prog, kM64, Interpreter::Dispatch::kChecked);
  Interpreter b(prog, kM64, Interpreter::Dispatch::kFast);
  a.start();
  b.start();
  RunResult ra = a.run(23);
  RunResult rb = b.run(23);
  ASSERT_EQ(static_cast<int>(ra.status), static_cast<int>(rb.status));
  if (ra.status != RunStatus::kRunning) return;  // seed-dependent; done
  const ckpt::Image img = ckpt::portable_encode(kM64, a.state());

  auto restored_fast = ckpt::portable_decode(img, kM64);
  auto restored_checked = ckpt::portable_decode(img, kM64);
  ASSERT_TRUE(restored_fast.ok());
  ASSERT_TRUE(restored_checked.ok());
  Interpreter c(prog, kM64, Interpreter::Dispatch::kFast);
  Interpreter d(prog, kM64, Interpreter::Dispatch::kChecked);
  c.set_state(std::move(restored_fast).value());
  d.set_state(std::move(restored_checked).value());
  for (int round = 0; round < 200; ++round) {
    RunResult rc = c.run(17);
    RunResult rd = d.run(17);
    ASSERT_EQ(static_cast<int>(rc.status), static_cast<int>(rd.status)) << rc.trap;
    ASSERT_EQ(rc.trap, rd.trap);
    ASSERT_EQ(image_of(c, kM64), image_of(d, kM64)) << "round " << round;
    if (rc.status == RunStatus::kHalted || rc.status == RunStatus::kTrap) break;
    if (rc.status == RunStatus::kSyscall) {
      service_syscall(c, rc.syscall);
      service_syscall(d, rd.syscall);
    }
  }
}

}  // namespace
}  // namespace starfish::vm
