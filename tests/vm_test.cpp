#include <gtest/gtest.h>

#include <string>

#include "vm/bytecode.hpp"
#include "vm/interp.hpp"
#include "vm/value.hpp"
#include "vm/verify.hpp"

namespace starfish::vm {
namespace {

const sim::Machine kM32 = {"i686", "Linux", util::Endian::kLittle, 4};
const sim::Machine kM64 = {"Alpha", "Linux", util::Endian::kLittle, 8};

Program must_assemble(const std::string& src) {
  auto r = assemble(src);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().to_string());
  return r.ok() ? r.value() : Program{};
}

/// Runs `src`'s main to completion on `machine`; returns top of stack.
Value run_to_halt(const std::string& src, const sim::Machine& machine = kM32) {
  Program prog = must_assemble(src);
  Interpreter interp(prog, machine);
  interp.start();
  auto r = interp.run();
  EXPECT_EQ(r.status, RunStatus::kHalted) << r.trap;
  return interp.mutable_state().stack.empty() ? Value::unit()
                                              : interp.mutable_state().stack.back();
}

// ---------------------------------------------------------- assembler ----

TEST(Assembler, RejectsUnknownMnemonic) {
  auto r = assemble("func main 0 0\n  frobnicate\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "asm");
}

TEST(Assembler, RejectsUnknownLabel) {
  auto r = assemble("func main 0 0\n  jmp nowhere\n");
  ASSERT_FALSE(r.ok());
}

TEST(Assembler, RejectsInstructionOutsideFunction) {
  EXPECT_FALSE(assemble("push_int 1\n").ok());
}

TEST(Assembler, RejectsBadOperandCounts) {
  EXPECT_FALSE(assemble("func main 0 0\n  push_int\n").ok());
  EXPECT_FALSE(assemble("func main 0 0\n  add 3\n").ok());
  EXPECT_FALSE(assemble("func main 0\n  halt\n").ok());
}

TEST(Assembler, CommentsAndBlankLinesIgnored) {
  auto r = assemble("# header comment\n\nfunc main 0 0\n  push_int 7  # trailing\n  halt\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().functions[0].code.size(), 2u);
}

TEST(Assembler, ForwardFunctionReferencesResolve) {
  auto r = assemble(R"(
func main 0 0
  push_int 4
  call helper
  halt
func helper 1 1
  load_local 0
  push_int 1
  add
  ret
)");
  ASSERT_TRUE(r.ok());
}

// -------------------------------------------------------- interpreter ----

TEST(Interp, ArithmeticExpression) {
  // (7 * 6) - (10 / 2) = 37
  Value v = run_to_halt(R"(
func main 0 0
  push_int 7
  push_int 6
  mul
  push_int 10
  push_int 2
  div
  sub
  halt
)");
  EXPECT_EQ(v, Value::integer(37));
}

TEST(Interp, FloatArithmetic) {
  Value v = run_to_halt(R"(
func main 0 0
  push_float 1.5
  push_float 2.25
  fadd
  push_float 2.0
  fmul
  halt
)");
  ASSERT_EQ(v.tag, Tag::kFloat);
  EXPECT_DOUBLE_EQ(v.f, 7.5);
}

TEST(Interp, LoopComputesTriangularNumber) {
  // sum 1..100 = 5050 via locals and a backward jump.
  Value v = run_to_halt(R"(
func main 0 2
  push_int 0
  store_local 0      # acc
  push_int 1
  store_local 1      # i
loop:
  load_local 1
  push_int 100
  le
  jmp_if_false done
  load_local 0
  load_local 1
  add
  store_local 0
  load_local 1
  push_int 1
  add
  store_local 1
  jmp loop
done:
  load_local 0
  halt
)");
  EXPECT_EQ(v, Value::integer(5050));
}

TEST(Interp, FunctionCallAndReturn) {
  Value v = run_to_halt(R"(
func main 0 0
  push_int 9
  push_int 16
  call hypot2
  halt
func hypot2 2 2
  load_local 0
  load_local 0
  mul
  load_local 1
  load_local 1
  mul
  add
  ret
)");
  EXPECT_EQ(v, Value::integer(81 + 256));
}

TEST(Interp, RecursionFactorial) {
  Value v = run_to_halt(R"(
func main 0 0
  push_int 10
  call fact
  halt
func fact 1 1
  load_local 0
  push_int 1
  le
  jmp_if_false rec
  push_int 1
  ret
rec:
  load_local 0
  push_int 1
  sub
  call fact
  load_local 0
  mul
  ret
)");
  EXPECT_EQ(v, Value::integer(3628800));
}

TEST(Interp, GlobalsPersistAcrossCalls) {
  Value v = run_to_halt(R"(
func main 0 0
  push_int 5
  store_global 3
  call bump
  pop
  load_global 3
  halt
func bump 0 0
  load_global 3
  push_int 1
  add
  store_global 3
  push_unit
  ret
)");
  EXPECT_EQ(v, Value::integer(6));
}

TEST(Interp, HeapArrayRoundtrip) {
  Value v = run_to_halt(R"(
func main 0 1
  push_int 10
  new_array
  store_local 0
  load_local 0
  push_int 4
  push_int 99
  astore
  load_local 0
  push_int 4
  aload
  halt
)");
  EXPECT_EQ(v, Value::integer(99));
}

TEST(Interp, ArrayLength) {
  Value v = run_to_halt(R"(
func main 0 0
  push_int 17
  new_array
  alen
  halt
)");
  EXPECT_EQ(v, Value::integer(17));
}

TEST(Interp, WordWrap32BitOverflow) {
  // 2^31 - 1 + 1 wraps negative on a 32-bit machine...
  Value v32 = run_to_halt(R"(
func main 0 0
  push_int 2147483647
  push_int 1
  add
  halt
)", kM32);
  EXPECT_EQ(v32, Value::integer(INT32_MIN));
  // ...but not on a 64-bit machine.
  Value v64 = run_to_halt(R"(
func main 0 0
  push_int 2147483647
  push_int 1
  add
  halt
)", kM64);
  EXPECT_EQ(v64, Value::integer(2147483648ll));
}

TEST(Interp, DivisionByZeroTraps) {
  Program prog = must_assemble("func main 0 0\n push_int 1\n push_int 0\n div\n halt\n");
  Interpreter interp(prog, kM32);
  interp.start();
  auto r = interp.run();
  EXPECT_EQ(r.status, RunStatus::kTrap);
  EXPECT_NE(r.trap.find("division"), std::string::npos);
}

TEST(Interp, OutOfBoundsArrayTraps) {
  Program prog = must_assemble(R"(
func main 0 0
  push_int 3
  new_array
  push_int 5
  aload
  halt
)");
  Interpreter interp(prog, kM32);
  interp.start();
  EXPECT_EQ(interp.run().status, RunStatus::kTrap);
}

TEST(Interp, StackUnderflowTraps) {
  Program prog = must_assemble("func main 0 0\n add\n halt\n");
  Interpreter interp(prog, kM32);
  interp.start();
  EXPECT_EQ(interp.run().status, RunStatus::kTrap);
}

TEST(Interp, TypeErrorTraps) {
  Program prog = must_assemble("func main 0 0\n push_float 1.0\n push_int 2\n add\n halt\n");
  Interpreter interp(prog, kM32);
  interp.start();
  EXPECT_EQ(interp.run().status, RunStatus::kTrap);
}

TEST(Interp, SyscallReturnsControlToHost) {
  Program prog = must_assemble(R"(
func main 0 0
  syscall rank
  push_int 100
  add
  halt
)");
  Interpreter interp(prog, kM32);
  interp.start();
  auto r = interp.run();
  ASSERT_EQ(r.status, RunStatus::kSyscall);
  EXPECT_EQ(r.syscall, Syscall::kRank);
  // Until the host completes the call, the pc stays at the syscall: a
  // checkpoint here would re-execute it after restore.
  auto again = interp.run(0);
  EXPECT_EQ(again.status, RunStatus::kRunning);
  interp.push_value(Value::integer(3));  // host services the call
  interp.complete_syscall();
  r = interp.run();
  ASSERT_EQ(r.status, RunStatus::kHalted);
  EXPECT_EQ(interp.mutable_state().stack.back(), Value::integer(103));
}

TEST(Interp, BlockedSyscallStateIsRestartable) {
  // Snapshot while a syscall is pending; the restored interpreter re-issues
  // the same syscall with the argument stack intact.
  Program prog = must_assemble(R"(
func main 0 0
  push_int 2
  syscall recv_from
  push_int 10
  add
  halt
)");
  Interpreter a(prog, kM32);
  a.start();
  auto r = a.run();
  ASSERT_EQ(r.status, RunStatus::kSyscall);
  EXPECT_EQ(r.syscall, Syscall::kRecvFrom);
  EXPECT_EQ(a.peek_value(0), Value::integer(2));  // arg still on the stack

  VmState snapshot = a.state();  // "checkpoint" taken while blocked
  Interpreter b(prog, kM32);
  b.set_state(snapshot);
  auto rb = b.run();
  ASSERT_EQ(rb.status, RunStatus::kSyscall);  // re-executes the receive
  EXPECT_EQ(rb.syscall, Syscall::kRecvFrom);
  (void)b.pop_value();
  b.push_value(Value::integer(32));  // the replayed message
  b.complete_syscall();
  rb = b.run();
  ASSERT_EQ(rb.status, RunStatus::kHalted);
  EXPECT_EQ(b.mutable_state().stack.back(), Value::integer(42));
}

TEST(Interp, StepBudgetSuspendsAndResumes) {
  Program prog = must_assemble(R"(
func main 0 1
  push_int 0
  store_local 0
loop:
  load_local 0
  push_int 1
  add
  store_local 0
  load_local 0
  push_int 1000
  lt
  jmp_if_false done
  jmp loop
done:
  load_local 0
  halt
)");
  Interpreter interp(prog, kM32);
  interp.start();
  int resumes = 0;
  for (;;) {
    auto r = interp.run(100);
    if (r.status == RunStatus::kHalted) break;
    ASSERT_EQ(r.status, RunStatus::kRunning);
    ++resumes;
    ASSERT_LT(resumes, 1000);
  }
  EXPECT_GT(resumes, 10);
  EXPECT_EQ(interp.mutable_state().stack.back(), Value::integer(1000));
}

TEST(Interp, StateSnapshotMidRunResumesIdentically) {
  // Run half on one interpreter, snapshot, resume on a second interpreter:
  // the checkpointing property the whole system relies on.
  const std::string src = R"(
func main 0 2
  push_int 0
  store_local 0
  push_int 1
  store_local 1
loop:
  load_local 1
  push_int 200
  le
  jmp_if_false done
  load_local 0
  load_local 1
  add
  store_local 0
  load_local 1
  push_int 1
  add
  store_local 1
  jmp loop
done:
  load_local 0
  halt
)";
  Program prog = must_assemble(src);
  Interpreter a(prog, kM32);
  a.start();
  (void)a.run(500);  // stop somewhere in the middle
  VmState snapshot = a.state();

  Interpreter b(prog, kM32);
  b.set_state(snapshot);
  auto r = b.run();
  ASSERT_EQ(r.status, RunStatus::kHalted);
  EXPECT_EQ(b.mutable_state().stack.back(), Value::integer(201 * 100));

  // The original also finishes with the same answer (snapshot is a copy).
  r = a.run();
  ASSERT_EQ(r.status, RunStatus::kHalted);
  EXPECT_EQ(a.mutable_state().stack.back(), Value::integer(201 * 100));
}

TEST(Interp, SwapDupPopNotAndOr) {
  Value v = run_to_halt(R"(
func main 0 0
  push_int 6
  push_int 3
  swap
  sub            # 3 - 6 = -3
  neg            # 3
  dup
  add            # 6
  push_int 12
  and            # 6 & 12 = 4
  push_int 1
  or             # 5
  halt
)");
  EXPECT_EQ(v, Value::integer(5));
}

TEST(Interp, NotOperator) {
  Value v = run_to_halt(R"(
func main 0 0
  push_bool 0
  not
  halt
)");
  EXPECT_EQ(v, Value::boolean(true));
}

TEST(Interp, IntFloatConversions) {
  Value v = run_to_halt(R"(
func main 0 0
  push_int 7
  i2f
  push_float 2.0
  fdiv           # 3.5
  f2i            # 3
  halt
)");
  EXPECT_EQ(v, Value::integer(3));
}

TEST(Interp, FloatNegAndComparisons) {
  Value v = run_to_halt(R"(
func main 0 0
  push_float 1.5
  neg
  push_float -1.5
  eq
  halt
)");
  EXPECT_EQ(v, Value::boolean(true));
}

TEST(Interp, ByteObjectsViaAlen) {
  Value v = run_to_halt(R"(
func main 0 0
  push_int 33
  new_bytes
  alen
  halt
)");
  EXPECT_EQ(v, Value::integer(33));
}

TEST(Interp, NestedCallsThreeDeep) {
  Value v = run_to_halt(R"(
func main 0 0
  push_int 2
  call twice
  halt
func twice 1 1
  load_local 0
  call inc
  call inc
  ret
func inc 1 1
  load_local 0
  push_int 1
  add
  ret
)");
  EXPECT_EQ(v, Value::integer(4));
}

TEST(Interp, ModAndDivTruncateTowardZero) {
  Value v = run_to_halt(R"(
func main 0 0
  push_int -7
  push_int 2
  div            # -3
  push_int -7
  push_int 2
  mod            # -1
  add
  halt
)");
  EXPECT_EQ(v, Value::integer(-4));
}

TEST(Interp, AstoreTypeErrorsTrap) {
  Program prog = must_assemble(R"(
func main 0 0
  push_int 1
  push_int 0
  push_int 5
  astore
  halt
)");
  Interpreter interp(prog, kM32);
  interp.start();
  EXPECT_EQ(interp.run().status, RunStatus::kTrap);
}

TEST(Interp, JmpIfFalseOnNonBoolTraps) {
  Program prog = must_assemble(R"(
func main 0 0
  push_int 1
  jmp_if_false out
out:
  halt
)");
  Interpreter interp(prog, kM32);
  interp.start();
  EXPECT_EQ(interp.run().status, RunStatus::kTrap);
}

TEST(Interp, FootprintGrowsWithHeap) {
  Program prog = must_assemble(R"(
func main 0 0
  push_int 10000
  new_array
  pop
  halt
)");
  Interpreter interp(prog, kM32);
  interp.start();
  const uint64_t before = interp.state().footprint_bytes();
  (void)interp.run();
  EXPECT_GT(interp.state().footprint_bytes(), before + 10000 * sizeof(Value) - 1);
}

// ----------------------------------------------------------- verifier ----

TEST(Verify, AcceptsWellFormedProgram) {
  Program p = must_assemble(R"(
func main 0 1
  push_int 1
  store_local 0
  load_local 0
  call helper
  halt
func helper 1 1
  load_local 0
  ret
)");
  EXPECT_TRUE(validate(p).ok());
}

TEST(Verify, RejectsMissingMain) {
  Program p = must_assemble("func notmain 0 0\n  halt\n");
  auto r = validate(p);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("main"), std::string::npos);
}

TEST(Verify, RejectsFallOffEnd) {
  Program p = must_assemble("func main 0 0\n  push_int 1\n  pop\n");
  EXPECT_FALSE(validate(p).ok());
}

TEST(Verify, RejectsOutOfRangeLocal) {
  Program p = must_assemble("func main 0 1\n  load_local 0\n  halt\n");
  p.functions[0].code[0].imm_i = 5;  // corrupt the slot index
  EXPECT_FALSE(validate(p).ok());
}

TEST(Verify, RejectsBadJumpTarget) {
  Program p = must_assemble("func main 0 0\n  jmp end\nend:\n  halt\n");
  p.functions[0].code[0].imm_i = 99;
  EXPECT_FALSE(validate(p).ok());
}

TEST(Verify, RejectsBadCallIndex) {
  Program p = must_assemble("func main 0 0\n  call main\n  halt\n");
  p.functions[0].code[0].imm_i = 7;
  EXPECT_FALSE(validate(p).ok());
}

TEST(Verify, RejectsUnknownSyscallId) {
  Program p = must_assemble("func main 0 0\n  syscall print\n  halt\n");
  p.functions[0].code[0].imm_i = 200;
  EXPECT_FALSE(validate(p).ok());
}

TEST(Verify, RejectsDuplicateFunctionNames) {
  Program p = must_assemble("func main 0 0\n  halt\n");
  p.functions.push_back(p.functions[0]);
  EXPECT_FALSE(validate(p).ok());
}

TEST(Disassemble, RoundTripPreservesBehavior) {
  const std::string src = R"(
func main 0 2
  push_int 0
  store_local 0
  push_int 1
  store_local 1
loop:
  load_local 1
  push_int 25
  le
  jmp_if_false done
  load_local 0
  load_local 1
  add
  store_local 0
  load_local 1
  push_int 1
  add
  store_local 1
  jmp loop
done:
  load_local 0
  halt
)";
  Program original = must_assemble(src);
  const std::string listing = disassemble(original);
  Program again = must_assemble(listing);
  EXPECT_TRUE(validate(again).ok());
  Interpreter a(original, kM32), b(again, kM32);
  a.start();
  b.start();
  (void)a.run();
  (void)b.run();
  EXPECT_EQ(a.state().stack, b.state().stack);  // sum 1..25 = 325 both ways
  EXPECT_EQ(a.state().stack.back(), Value::integer(325));
}

// ---------------------------------------------------- execution engine ----

TEST(Verifier, AnalyzeProvesStraightLineFacts) {
  Program p = must_assemble(R"(
func main 0 1
  push_int 2
  push_int 3
  add
  store_local 0
  halt
)");
  ProgramFacts facts = analyze(p);
  ASSERT_EQ(facts.functions.size(), 1u);
  const FunctionFacts& f = facts.functions[0];
  ASSERT_TRUE(f.analyzed);
  EXPECT_TRUE(facts.any_fast);
  for (size_t pc = 0; pc < p.functions[0].code.size(); ++pc) {
    EXPECT_EQ(f.fast[pc], 1) << "pc " << pc;
  }
  // Exact depths before each instruction: 0, 1, 2, 1, 0.
  EXPECT_EQ(f.depth, (std::vector<int32_t>{0, 1, 2, 1, 0}));
  EXPECT_EQ(f.max_stack, 2u);
}

TEST(Verifier, UnderflowMakesFunctionUnanalyzable) {
  // `add` pops below main's entry depth: no facts, everything stays checked.
  Program p = must_assemble("func main 0 0\n  add\n  halt\n");
  ProgramFacts facts = analyze(p);
  EXPECT_FALSE(facts.functions[0].analyzed);
  EXPECT_FALSE(facts.any_fast);
}

TEST(Verifier, CallerOfUnanalyzableCalleeIsDemoted) {
  // helper underflows, so main's assumption about the call's stack effect
  // is unprovable and main must forfeit its facts too.
  Program p = must_assemble(R"(
func main 0 0
  call helper
  halt
func helper 0 0
  add
  ret
)");
  ProgramFacts facts = analyze(p);
  EXPECT_FALSE(facts.functions[1].analyzed);
  EXPECT_FALSE(facts.functions[0].analyzed);
}

TEST(Verifier, DefiniteTrapKeepsInstructionCheckedWithoutFailingFunction) {
  // not-on-int provably traps; the function keeps its facts (flow dies at
  // the trap) and the checked escape must preserve the original message.
  Program p = must_assemble("func main 0 0\n  push_int 1\n  not\n  halt\n");
  ProgramFacts facts = analyze(p);
  ASSERT_TRUE(facts.functions[0].analyzed);
  EXPECT_EQ(facts.functions[0].fast[1], 0);

  Interpreter interp(p, kM32);
  interp.start();
  auto r = interp.run();
  EXPECT_EQ(r.status, RunStatus::kTrap);
  EXPECT_EQ(r.trap, "not on non-bool");
}

TEST(Interp, AllDispatchModesProduceIdenticalResults) {
  const std::string src = R"(
func main 0 2
  push_int 0
  store_local 0
  push_int 1
  store_local 1
loop:
  load_local 1
  push_int 500
  le
  jmp_if_false done
  load_local 0
  load_local 1
  add
  store_local 0
  load_local 1
  push_int 1
  add
  store_local 1
  jmp loop
done:
  load_local 0
  halt
)";
  Program p = must_assemble(src);
  Interpreter fast(p, kM32, Interpreter::Dispatch::kFast);
  Interpreter nofuse(p, kM32, Interpreter::Dispatch::kFastNoFuse);
  Interpreter checked(p, kM32, Interpreter::Dispatch::kChecked);
  EXPECT_TRUE(fast.fast_dispatch());
  EXPECT_FALSE(checked.fast_dispatch());
  for (Interpreter* i : {&fast, &nofuse, &checked}) {
    i->start();
    auto r = i->run();
    EXPECT_EQ(r.status, RunStatus::kHalted) << r.trap;
  }
  EXPECT_EQ(fast.state().stack.back(), Value::integer(125250));
  EXPECT_EQ(fast.state().stack, checked.state().stack);
  EXPECT_EQ(nofuse.state().stack, checked.state().stack);
  EXPECT_EQ(fast.state().steps_executed, checked.state().steps_executed);
  EXPECT_EQ(nofuse.state().steps_executed, checked.state().steps_executed);
}

TEST(Interp, TrapMessagesIdenticalAcrossDispatchers) {
  // Division by zero sits on a verifier-fast path (zero guard retained).
  const std::string src = "func main 0 0\n  push_int 1\n  push_int 0\n  div\n  halt\n";
  Program p = must_assemble(src);
  Interpreter fast(p, kM32, Interpreter::Dispatch::kFast);
  Interpreter checked(p, kM32, Interpreter::Dispatch::kChecked);
  fast.start();
  checked.start();
  auto rf = fast.run(), rc = checked.run();
  EXPECT_EQ(rf.status, RunStatus::kTrap);
  EXPECT_EQ(rf.trap, rc.trap);
  EXPECT_EQ(rf.trap, "division by zero");
  EXPECT_EQ(fast.state().steps_executed, checked.state().steps_executed);
  EXPECT_EQ(fast.state().stack, checked.state().stack);
}

TEST(Interp, HostPopOnEmptyStackTrapsInsteadOfReturningUnit) {
  Program p = must_assemble("func main 0 0\n  syscall print\n  halt\n");
  Interpreter interp(p, kM32, Interpreter::Dispatch::kChecked);
  interp.start();
  interp.mutable_state().stack.clear();  // simulate a host protocol bug
  (void)interp.pop_value();              // old behavior: silently unit
  auto r = interp.run();
  EXPECT_EQ(r.status, RunStatus::kTrap);
  EXPECT_EQ(r.trap, "host pop on empty stack");
}

TEST(Interp, ExecStatsCountFastAndFusedInstructions) {
  Program p = must_assemble(R"(
func main 0 1
  push_int 0
  store_local 0
loop:
  load_local 0
  push_int 1
  add
  store_local 0
  load_local 0
  push_int 100
  lt
  jmp_if_false done
  jmp loop
done:
  halt
)");
  Interpreter interp(p, kM64);
  interp.start();
  auto r = interp.run();
  EXPECT_EQ(r.status, RunStatus::kHalted) << r.trap;
  const auto& stats = interp.exec_stats();
  EXPECT_EQ(stats.fast_instrs, interp.state().steps_executed);
  EXPECT_EQ(stats.checked_instrs, 0u);
  EXPECT_GT(stats.fused_hits, 0u);  // inc-local and load-cmp-branch idioms
}

TEST(Interp, ObsCountersMirrorExecution) {
  obs::Hub hub;
  Program p = must_assemble("func main 0 0\n  push_int 1\n  push_int 2\n  add\n  halt\n");
  Interpreter interp(p, kM64);
  interp.set_obs(&hub);
  interp.start();
  (void)interp.run();
  const obs::Counter* retired = hub.metrics.find_counter("sim.vm.instructions_retired");
  ASSERT_NE(retired, nullptr);
  EXPECT_EQ(retired->value(), interp.state().steps_executed);
  const obs::Counter* fastc = hub.metrics.find_counter("sim.vm.dispatch_fast");
  ASSERT_NE(fastc, nullptr);
  EXPECT_EQ(fastc->value(), interp.state().steps_executed);
}

TEST(Interp, RestoredStateFailingDepthVettingFallsBackToChecked) {
  Program p = must_assemble("func main 0 0\n  push_int 1\n  push_int 2\n  add\n  halt\n");
  Interpreter a(p, kM32);
  a.start();
  (void)a.run(1);  // pause with one value on the stack
  VmState s = a.state();
  s.stack.push_back(Value::integer(99));  // corrupt: depth no longer matches
  Interpreter b(p, kM32);
  b.set_state(std::move(s));
  EXPECT_FALSE(b.fast_dispatch());  // checked loop re-validates per step
  VmState good = a.state();
  Interpreter c(p, kM32);
  c.set_state(std::move(good));
  EXPECT_TRUE(c.fast_dispatch());
  auto r = c.run();
  EXPECT_EQ(r.status, RunStatus::kHalted);
  EXPECT_EQ(c.state().stack.back(), Value::integer(3));
}

TEST(Disassemble, RendersSyscallsAndCallsByName) {
  Program p = must_assemble(R"(
func main 0 0
  syscall rank
  call helper
  halt
func helper 1 1
  load_local 0
  ret
)");
  const std::string listing = disassemble(p);
  EXPECT_NE(listing.find("syscall rank"), std::string::npos);
  EXPECT_NE(listing.find("call helper"), std::string::npos);
}

}  // namespace
}  // namespace starfish::vm
